#include "rl/ddpg_agent.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace drlstream::rl {
namespace {

/// Registry handles for the decision-pipeline phases (Algorithm 1) and the
/// training step. Resolved once; the registry returns stable pointers.
struct DdpgMetrics {
  obs::Histogram* actor_forward_us;
  obs::Histogram* knn_solve_us;
  obs::Histogram* critic_score_us;
  obs::Histogram* train_step_us;
  obs::Histogram* train_targets_us;
  obs::Histogram* critic_update_us;
  obs::Histogram* actor_update_us;
  obs::Histogram* soft_update_us;
  obs::Counter* knn_failures;
};

const DdpgMetrics& Metrics() {
  static const DdpgMetrics metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
    return DdpgMetrics{
        reg.histogram("phase.actor_forward_us"),
        reg.histogram("phase.knn_solve_us"),
        reg.histogram("phase.critic_score_us"),
        reg.histogram("rl.ddpg.train_step_us"),
        reg.histogram("rl.ddpg.train_targets_us"),
        reg.histogram("rl.ddpg.critic_update_us"),
        reg.histogram("rl.ddpg.actor_update_us"),
        reg.histogram("rl.ddpg.soft_update_us"),
        reg.counter("rl.ddpg.knn_failures"),
    };
  }();
  return metrics;
}

OffPolicyTrainer::Options TrainerOptions(const DdpgConfig& config) {
  OffPolicyTrainer::Options options;
  options.gamma = config.gamma;
  options.replay_capacity = config.replay_capacity;
  options.minibatch_size = config.minibatch_size;
  options.grad_clip = config.grad_clip;
  options.reward_shift = config.reward_shift;
  options.reward_scale = config.reward_scale;
  options.reward_clip = config.reward_clip;
  options.seed = config.seed;
  return options;
}

/// Machine mask to feed the K-NN solve for a state: dead machines are
/// excluded from the feasible set *before* the solve (an empty mask means
/// every machine is up, i.e. no restriction).
const std::vector<uint8_t>* MachineMaskOf(const State& state) {
  return state.machine_up.empty() ? nullptr : &state.machine_up;
}

}  // namespace

DdpgAgent::DdpgAgent(const StateEncoder& encoder, DdpgConfig config)
    : encoder_(encoder), config_(config),
      trainer_(encoder_, TrainerOptions(config)),
      knn_(encoder.num_executors(), encoder.num_machines()) {
  const std::vector<nn::Activation> acts =
      OffPolicyTrainer::MlpActivations(config_.hidden_sizes.size());

  const std::vector<int> actor_sizes = OffPolicyTrainer::MlpSizes(
      encoder_.state_dim(), config_.hidden_sizes, encoder_.action_dim());
  actor_ = std::make_unique<nn::Mlp>(actor_sizes, acts, trainer_.rng());
  actor_target_ = std::make_unique<nn::Mlp>(actor_sizes, acts, trainer_.rng());
  actor_target_->CopyFrom(*actor_);

  const std::vector<int> critic_sizes =
      OffPolicyTrainer::MlpSizes(encoder_.state_dim() + encoder_.action_dim(),
                                 config_.hidden_sizes, 1);
  critic_ = std::make_unique<nn::Mlp>(critic_sizes, acts, trainer_.rng());
  critic_target_ =
      std::make_unique<nn::Mlp>(critic_sizes, acts, trainer_.rng());
  critic_target_->CopyFrom(*critic_);

  actor_opt_ = std::make_unique<nn::Adam>(config_.actor_learning_rate);
  critic_opt_ = std::make_unique<nn::Adam>(config_.critic_learning_rate);

  RefreshCriticCaches();
}

void DdpgAgent::RefreshCriticCaches() {
  const auto refresh = [this](const nn::Mlp& critic, CriticCache* cache) {
    const nn::Linear& first = critic.layer(0);
    const int h = first.out_dim();
    const int s = encoder_.state_dim();
    const int a = encoder_.action_dim();
    DRLSTREAM_CHECK_EQ(first.in_dim(), s + a);
    cache->state_weights.Resize(h, s);
    cache->action_cols.Resize(a, h);
    for (int r = 0; r < h; ++r) {
      const double* w = first.weights.row(r);
      std::copy(w, w + s, cache->state_weights.row(r));
      for (int c = 0; c < a; ++c) cache->action_cols.row(c)[r] = w[s + c];
    }
  };
  refresh(*critic_, &critic_cache_);
  refresh(*critic_target_, &critic_target_cache_);
}

std::vector<double> DdpgAgent::ProtoAction(const State& state) const {
  return actor_->Forward(encoder_.EncodeState(state));
}

double DdpgAgent::QValue(const State& state,
                         const sched::Schedule& action) const {
  return critic_->Forward(encoder_.EncodeStateAction(state, action))[0];
}

void DdpgAgent::CandidateQValuesFromZ(
    const nn::Mlp& critic, const CriticCache& cache, const double* z_state,
    const std::vector<sched::Schedule>& actions, ScoreScratch* scratch,
    std::vector<double>* q_out) const {
  const nn::Linear& first = critic.layer(0);
  const int h = first.out_dim();
  const int m = encoder_.num_machines();
  const int count = static_cast<int>(actions.size());
  const nn::kernels::VecAddFn vec_add = nn::kernels::ResolveVecAdd();
  // First layer: one gather-accumulate per candidate, landing in a batch
  // matrix. Each row repeats the single-candidate arithmetic exactly
  // (copy the shared state pre-activation, add one weight column per
  // executor in executor order, activate), so a row's bits do not depend
  // on the batch size.
  nn::Matrix& batch_x = scratch->batch_x;
  batch_x.Resize(count, h);
  for (int c = 0; c < count; ++c) {
    const sched::Schedule& action = actions[c];
    double* z = batch_x.row(c);
    std::copy(z_state, z_state + h, z);
    // One-hot action: each executor row contributes one weight column,
    // stored transposed in the cache so the gather is contiguous.
    for (int i = 0; i < action.num_executors(); ++i) {
      const double* col = cache.action_cols.row(
          static_cast<size_t>(i) * m + action.MachineOf(i));
      vec_add(z, col, h);
    }
    for (int r = 0; r < h; ++r) {
      z[r] = nn::ApplyActivation(first.activation, z[r]);
    }
  }
  // Remaining (tiny) layers: one GEMM per layer over the whole candidate
  // set instead of a MatVec per candidate. MatTMul keeps MatVec's per-row
  // accumulation order (the ForwardBatch guarantee), so the batched rows
  // match the per-candidate path bit for bit.
  nn::Matrix* in = &scratch->batch_x;
  nn::Matrix* out = &scratch->batch_y;
  for (int l = 1; l < critic.num_layers(); ++l) {
    const nn::Linear& layer = critic.layer(l);
    nn::MatTMul(*in, layer.weights, out);
    for (int c = 0; c < count; ++c) {
      double* row = out->row(c);
      for (int r = 0; r < layer.out_dim(); ++r) {
        row[r] = nn::ApplyActivation(layer.activation, row[r] + layer.bias[r]);
      }
    }
    std::swap(in, out);
  }
  for (int c = 0; c < count; ++c) q_out->push_back(in->row(c)[0]);
}

std::vector<double> DdpgAgent::CandidateQValues(
    const nn::Mlp& critic, const CriticCache& cache,
    const std::vector<double>& state_encoded,
    const std::vector<sched::Schedule>& actions) const {
  const nn::Linear& first = critic.layer(0);
  const int h = first.out_dim();
  DRLSTREAM_CHECK_EQ(static_cast<int>(state_encoded.size()),
                     encoder_.state_dim());
  // First-layer pre-activation of the state part (shared by candidates).
  // MatVec-then-bias matches the batched MatTMul path bit for bit: both
  // use the shared dot-product fold in nn/matrix.cc.
  std::vector<double> z_state;
  cache.state_weights.MatVec(state_encoded, &z_state);
  for (int r = 0; r < h; ++r) z_state[r] += first.bias[r];
  std::vector<double> q_values;
  q_values.reserve(actions.size());
  ScoreScratch scratch;
  CandidateQValuesFromZ(critic, cache, z_state.data(), actions, &scratch,
                        &q_values);
  return q_values;
}

int DdpgAgent::BestByCritic(const nn::Mlp& critic, const CriticCache& cache,
                            const State& state,
                            const miqp::KnnResult& candidates,
                            double* best_q_out) const {
  DRLSTREAM_CHECK(!candidates.actions.empty());
  const std::vector<double> q_values = CandidateQValues(
      critic, cache, encoder_.EncodeState(state), candidates.actions);
  int best = 0;
  for (size_t c = 1; c < q_values.size(); ++c) {
    if (q_values[c] > q_values[best]) best = static_cast<int>(c);
  }
  if (best_q_out != nullptr) *best_q_out = q_values[best];
  return best;
}

std::string DdpgAgent::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s (ddpg): K=%d candidates via MIQP-NN, gamma=%g, tau=%g, "
                "H=%d, |B|=%zu",
                name().c_str(), config_.knn_k, config_.gamma, config_.tau,
                config_.minibatch_size, config_.replay_capacity);
  return buf;
}

Status DdpgAgent::SelectActionInto(const State& state, double epsilon,
                                   Rng* rng, PolicyAction* out) const {
  DecisionWorkspace& ws = decide_ws_;
  ws.state_enc.resize(encoder_.state_dim());
  encoder_.EncodeStateInto(state, ws.state_enc.data());
  {
    obs::ScopedPhase phase(Metrics().actor_forward_us, "actor_forward");
    actor_->Forward(ws.state_enc, &ws.fwd_x, &ws.fwd_z);  // proto in fwd_x
  }
  return DecideFromProto(state, epsilon, rng, out);
}

Status DdpgAgent::DecideFromProto(const State& state, double epsilon,
                                  Rng* rng, PolicyAction* out) const {
  DecisionWorkspace& ws = decide_ws_;  // state_enc + fwd_x already filled
  // Exploration policy (line 9): with probability epsilon, perturb the
  // proto-action with uniform noise I in [0,1]^{N*M}.
  if (epsilon > 0.0 && rng->Bernoulli(epsilon)) {
    for (double& v : ws.fwd_x) v += rng->Uniform(0.0, 1.0);
  }
  const Status solved = [&] {
    obs::ScopedPhase phase(Metrics().knn_solve_us, "knn_solve");
    return knn_.SolveInto(ws.fwd_x, config_.knn_k, MachineMaskOf(state),
                          &ws.knn_ws, &ws.candidates);
  }();
  DRLSTREAM_RETURN_NOT_OK(solved);
  obs::ScopedPhase phase(Metrics().critic_score_us, "critic_score");
  // First-layer pre-activation of the state part (shared by candidates),
  // then one gather + tiny upper layers per candidate.
  critic_cache_.state_weights.MatVec(ws.state_enc, &ws.z_state);
  const std::vector<double>& bias0 = critic_->layer(0).bias;
  for (size_t r = 0; r < ws.z_state.size(); ++r) ws.z_state[r] += bias0[r];
  ws.q_values.clear();
  ws.q_values.reserve(ws.candidates.actions.size());
  CandidateQValuesFromZ(*critic_, critic_cache_, ws.z_state.data(),
                        ws.candidates.actions, &ws.score, &ws.q_values);
  int best = 0;
  for (size_t c = 1; c < ws.q_values.size(); ++c) {
    if (ws.q_values[c] > ws.q_values[best]) best = static_cast<int>(c);
  }
  out->schedule = ws.candidates.actions[best];
  out->schedule.set_tenant(state.tenant);
  out->move_index = -1;
  return Status::OK();
}

StatusOr<PolicyAction> DdpgAgent::SelectAction(const State& state,
                                               double epsilon,
                                               Rng* rng) const {
  PolicyAction action;
  DRLSTREAM_RETURN_NOT_OK(SelectActionInto(state, epsilon, rng, &action));
  return action;
}

void DdpgAgent::SelectActionBatch(DecisionRequest* slots, int count) const {
  if (count <= 0) return;
  if (count == 1) {
    // No fusion to gain; keep the single-decision path (and its per-call
    // workspace behaviour) exactly.
    slots[0].status = SelectActionInto(*slots[0].state, slots[0].epsilon,
                                       slots[0].rng, slots[0].out);
    return;
  }
  const int dim = encoder_.state_dim();
  nn::Matrix* input = decide_batch_tape_.Prepare(*actor_, count);
  for (int i = 0; i < count; ++i) {
    encoder_.EncodeStateInto(*slots[i].state, input->row(i));
  }
  const nn::Matrix* proto;
  {
    obs::ScopedPhase phase(Metrics().actor_forward_us, "actor_forward");
    proto = &actor_->ForwardBatch(&decide_batch_tape_);
  }
  // Per-slot tail in slot order: each row of the fused pass is bitwise the
  // slot's own Forward() output, so from here on the batch is
  // indistinguishable from sequential SelectActionInto calls.
  DecisionWorkspace& ws = decide_ws_;
  for (int i = 0; i < count; ++i) {
    ws.state_enc.assign(input->row(i), input->row(i) + dim);
    ws.fwd_x.assign(proto->row(i), proto->row(i) + proto->cols());
    slots[i].status =
        DecideFromProto(*slots[i].state, slots[i].epsilon, slots[i].rng,
                        slots[i].out);
  }
}

Status DdpgAgent::GreedyActionInto(const State& state,
                                   sched::Schedule* out) const {
  Rng unused(0);
  DRLSTREAM_RETURN_NOT_OK(
      SelectActionInto(state, 0.0, &unused, &decide_ws_.action));
  *out = decide_ws_.action.schedule;
  return Status::OK();
}

StatusOr<sched::Schedule> DdpgAgent::GreedyAction(const State& state) const {
  Rng unused(0);
  DRLSTREAM_ASSIGN_OR_RETURN(PolicyAction action,
                             SelectAction(state, 0.0, &unused));
  return std::move(action.schedule);
}

void DdpgAgent::Observe(Transition transition) {
  trainer_.Observe(std::move(transition));
}

void DdpgAgent::ComputeTargetsParallel(
    const std::vector<const Transition*>& batch) {
  const int h = static_cast<int>(batch.size());
  const int action_dim = encoder_.action_dim();
  const int hidden = critic_target_->layer(0).out_dim();

  // Target-actor proto-actions for all next states, one GEMM per layer.
  nn::Matrix* x_next = trainer_.PrepareStateBatch(
      *actor_target_, &target_actor_tape_, batch, /*next_states=*/true);
  const nn::Matrix& proto_next =
      actor_target_->ForwardBatch(&target_actor_tape_);

  // Target-critic first-layer state-part pre-activations, batched. The
  // per-candidate scoring below only adds action columns on top.
  nn::MatTMul(*x_next, critic_target_cache_.state_weights, &z_state_next_);
  const std::vector<double>& bias0 = critic_target_->layer(0).bias;
  for (int i = 0; i < h; ++i) {
    double* z = z_state_next_.row(i);
    for (int r = 0; r < hidden; ++r) z[r] += bias0[r];
  }

  // y_i = r_i + gamma * max_{a in A_{i+1,K}} Q'(s_{i+1}, a), where
  // A_{i+1,K} is the K-NN set of the target actor's proto-action. Each
  // transition is independent and writes only its own slot, so the result
  // is identical for every thread count.
  target_values_.assign(h, 0.0);
  target_valid_.assign(h, 1);
  proto_scratch_.resize(h);
  if (static_cast<int>(target_knn_ws_.size()) < h) {
    target_knn_ws_.resize(h);
    target_candidates_.resize(h);
    target_score_.resize(h);
    target_q_.resize(h);
  }
  GlobalThreadPool()->ParallelFor(h, [&](int i) {
    std::vector<double>& proto = proto_scratch_[i];
    proto.assign(proto_next.row(i), proto_next.row(i) + action_dim);
    miqp::KnnResult& candidates = target_candidates_[i];
    const Status solved = [&] {
      obs::ScopedPhase phase(Metrics().knn_solve_us, "knn_solve");
      return knn_.SolveInto(proto, config_.knn_k,
                            MachineMaskOf(batch[i]->next_state),
                            &target_knn_ws_[i], &candidates);
    }();
    if (!solved.ok()) {
      target_valid_[i] = 0;
      return;
    }
    std::vector<double>& q_values = target_q_[i];
    q_values.clear();
    q_values.reserve(candidates.actions.size());
    CandidateQValuesFromZ(*critic_target_, critic_target_cache_,
                          z_state_next_.row(i), candidates.actions,
                          &target_score_[i], &q_values);
    double max_q = q_values[0];
    for (size_t c = 1; c < q_values.size(); ++c) {
      if (q_values[c] > max_q) max_q = q_values[c];
    }
    target_values_[i] = batch[i]->reward + config_.gamma * max_q;
  });
  for (int i = 0; i < h; ++i) {
    if (!target_valid_[i]) {
      ++knn_failures_;
      Metrics().knn_failures->Add(1);
      DRLSTREAM_LOG(kWarning)
          << "K-NN solve failed on a target proto-action; skipping "
          << "minibatch sample (" << knn_failures_ << " skipped so far)";
    }
  }
}

double DdpgAgent::TrainStep() {
  if (trainer_.empty()) return 0.0;
  obs::ScopedPhase step_phase(Metrics().train_step_us, "train_step");
  const std::vector<const Transition*> batch = trainer_.SampleBatch();
  const double inv_h = 1.0 / config_.minibatch_size;
  const int state_dim = encoder_.state_dim();
  const int action_dim = encoder_.action_dim();

  {
    obs::ScopedPhase phase(Metrics().train_targets_us, "train_targets");
    ComputeTargetsParallel(batch);
  }
  valid_rows_.clear();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (target_valid_[i]) valid_rows_.push_back(static_cast<int>(i));
  }
  const int v = static_cast<int>(valid_rows_.size());

  // ---- Critic update (lines 15-16): whole minibatch per GEMM ----
  double critic_loss = 0.0;
  if (v > 0) {
    obs::ScopedPhase phase(Metrics().critic_update_us, "critic_update");
    critic_->ZeroGrad();
    nn::Matrix* x_crit = critic_update_tape_.Prepare(*critic_, v);
    for (int row = 0; row < v; ++row) {
      const Transition* t = batch[valid_rows_[row]];
      double* dst = x_crit->row(row);
      encoder_.EncodeStateInto(t->state, dst);
      encoder_.EncodeActionInto(t->action_assignments, dst + state_dim);
    }
    const nn::Matrix& q = critic_->ForwardBatch(&critic_update_tape_);
    critic_grad_out_.Resize(v, 1);
    for (int row = 0; row < v; ++row) {
      const double td = q.row(row)[0] - target_values_[valid_rows_[row]];
      critic_loss += td * td;
      critic_grad_out_.row(row)[0] = 2.0 * td * inv_h;
    }
    critic_->BackwardBatch(&critic_update_tape_, critic_grad_out_);
    critic_->ClipGradNorm(config_.grad_clip);
    critic_opt_->Step(critic_.get());
  }

  // ---- Actor update (line 17): deterministic policy gradient, batched ----
  // grad_theta = 1/H sum_i grad_a Q(s_i, a)|_{a = f(s_i)} * grad_theta f(s_i)
  if (v > 0) {
    obs::ScopedPhase phase(Metrics().actor_update_us, "actor_update");
    actor_->ZeroGrad();
    nn::Matrix* x_s = actor_update_tape_.Prepare(*actor_, v);
    for (int row = 0; row < v; ++row) {
      encoder_.EncodeStateInto(batch[valid_rows_[row]]->state, x_s->row(row));
    }
    const nn::Matrix& proto = actor_->ForwardBatch(&actor_update_tape_);
    nn::Matrix* x_sa = critic_through_tape_.Prepare(*critic_, v);
    for (int row = 0; row < v; ++row) {
      double* dst = x_sa->row(row);
      std::copy(x_s->row(row), x_s->row(row) + state_dim, dst);
      std::copy(proto.row(row), proto.row(row) + action_dim,
                dst + state_dim);
    }
    critic_->ForwardBatch(&critic_through_tape_);
    // dQ/d(input) of the critic; parameter grads are not accumulated.
    critic_grad_out_.Resize(v, 1);
    critic_grad_out_.Fill(1.0);
    critic_->BackwardBatch(&critic_through_tape_, critic_grad_out_,
                           /*accumulate_param_grads=*/false,
                           &critic_grad_in_);
    // Gradient *ascent* on Q: feed -dQ/da as the actor's output loss grad.
    actor_grad_out_.Resize(v, action_dim);
    for (int row = 0; row < v; ++row) {
      const double* dq = critic_grad_in_.row(row) + state_dim;
      double* g = actor_grad_out_.row(row);
      for (int k = 0; k < action_dim; ++k) g[k] = -dq[k] * inv_h;
    }
    actor_->BackwardBatch(&actor_update_tape_, actor_grad_out_);
    actor_->ClipGradNorm(config_.grad_clip);
    actor_opt_->Step(actor_.get());
  }

  // ---- Soft target updates (line 18) ----
  {
    obs::ScopedPhase phase(Metrics().soft_update_us, "soft_update");
    actor_target_->SoftUpdateFrom(*actor_, config_.tau);
    critic_target_->SoftUpdateFrom(*critic_, config_.tau);
    RefreshCriticCaches();
  }

  return critic_loss * inv_h;
}

double DdpgAgent::TrainStepReference() {
  if (trainer_.empty()) return 0.0;
  const std::vector<const Transition*> batch = trainer_.SampleBatch();
  const double inv_h = 1.0 / config_.minibatch_size;

  // ---- Targets, one transition at a time ----
  target_values_.assign(batch.size(), 0.0);
  target_valid_.assign(batch.size(), 1);
  int valid = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Transition* t = batch[i];
    const std::vector<double> proto_next =
        actor_target_->Forward(encoder_.EncodeState(t->next_state));
    auto candidates_or =
        knn_.Solve(proto_next, config_.knn_k, MachineMaskOf(t->next_state));
    if (!candidates_or.ok()) {
      target_valid_[i] = 0;
      ++knn_failures_;
      Metrics().knn_failures->Add(1);
      DRLSTREAM_LOG(kWarning)
          << "K-NN solve failed on a target proto-action; skipping "
          << "minibatch sample (" << knn_failures_ << " skipped so far)";
      continue;
    }
    ++valid;
    double max_next_q = 0.0;
    BestByCritic(*critic_target_, critic_target_cache_, t->next_state,
                 *candidates_or, &max_next_q);
    target_values_[i] = t->reward + config_.gamma * max_next_q;
  }

  // ---- Critic update (lines 15-16) ----
  double critic_loss = 0.0;
  if (valid > 0) {
    critic_->ZeroGrad();
    nn::Tape tape;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!target_valid_[i]) continue;
      const Transition* t = batch[i];
      std::vector<double> critic_in = encoder_.EncodeState(t->state);
      const std::vector<double> a =
          encoder_.EncodeAction(t->action_assignments);
      critic_in.insert(critic_in.end(), a.begin(), a.end());

      const std::vector<double> q = critic_->Forward(critic_in, &tape);
      const double td = q[0] - target_values_[i];
      critic_loss += td * td;
      critic_->Backward(tape, {2.0 * td * inv_h});
    }
    critic_->ClipGradNorm(config_.grad_clip);
    critic_opt_->Step(critic_.get());
  }

  // ---- Actor update (line 17): deterministic policy gradient ----
  if (valid > 0) {
    actor_->ZeroGrad();
    nn::Tape actor_tape;
    nn::Tape critic_tape;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!target_valid_[i]) continue;
      const Transition* t = batch[i];
      const std::vector<double> s = encoder_.EncodeState(t->state);
      const std::vector<double> proto = actor_->Forward(s, &actor_tape);
      std::vector<double> critic_in = s;
      critic_in.insert(critic_in.end(), proto.begin(), proto.end());
      critic_->Forward(critic_in, &critic_tape);
      // dQ/d(input) of the critic; the action part is the tail.
      critic_->ZeroGrad();  // Discard parameter grads from this pass.
      const std::vector<double> dq_dinput =
          critic_->Backward(critic_tape, {1.0});
      // Gradient *ascent* on Q: feed -dQ/da as the actor's output grad.
      std::vector<double> grad_proto(proto.size());
      for (size_t k = 0; k < proto.size(); ++k) {
        grad_proto[k] = -dq_dinput[s.size() + k] * inv_h;
      }
      actor_->Backward(actor_tape, grad_proto);
    }
    actor_->ClipGradNorm(config_.grad_clip);
    actor_opt_->Step(actor_.get());
  }

  // ---- Soft target updates (line 18) ----
  actor_target_->SoftUpdateFrom(*actor_, config_.tau);
  critic_target_->SoftUpdateFrom(*critic_, config_.tau);
  RefreshCriticCaches();

  return critic_loss * inv_h;
}

void DdpgAgent::PretrainOffline(const TransitionDatabase& db, int steps) {
  for (const TransitionDatabase::Record& record : db.records()) {
    Observe(record.transition);
  }
  for (int i = 0; i < steps && !trainer_.empty(); ++i) TrainStep();
}

Status DdpgAgent::Save(const std::string& prefix) const {
  DRLSTREAM_RETURN_NOT_OK(actor_->Save(prefix + ".actor"));
  return critic_->Save(prefix + ".critic");
}

Status DdpgAgent::Load(const std::string& prefix) {
  DRLSTREAM_ASSIGN_OR_RETURN(nn::Mlp actor, nn::Mlp::Load(prefix + ".actor"));
  DRLSTREAM_ASSIGN_OR_RETURN(nn::Mlp critic,
                             nn::Mlp::Load(prefix + ".critic"));
  if (actor.input_dim() != actor_->input_dim() ||
      actor.output_dim() != actor_->output_dim() ||
      critic.input_dim() != critic_->input_dim()) {
    return Status::InvalidArgument("loaded network shapes do not match");
  }
  actor_->CopyFrom(actor);
  actor_target_->CopyFrom(actor);
  critic_->CopyFrom(critic);
  critic_target_->CopyFrom(critic);
  RefreshCriticCaches();
  return Status::OK();
}

}  // namespace drlstream::rl
