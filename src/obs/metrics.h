#ifndef DRLSTREAM_OBS_METRICS_H_
#define DRLSTREAM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace drlstream::obs {

/// Process-wide observability switches. Both default to off; recording is a
/// relaxed load + branch when disabled, so instrumentation compiles in
/// unconditionally and healthy hot paths pay near-zero (see the
/// BM_SimFaultReplay / BM_DdpgTrainStep gates in scripts/run_bench.sh).
/// Enabled via --metrics / --trace-out (common/flags.h).
inline constexpr uint32_t kMetricsBit = 1u;
inline constexpr uint32_t kTraceBit = 2u;

namespace internal {
extern std::atomic<uint32_t> g_obs_flags;
}  // namespace internal

inline bool MetricsEnabled() {
  return (internal::g_obs_flags.load(std::memory_order_relaxed) &
          kMetricsBit) != 0;
}
inline bool TraceEnabled() {
  return (internal::g_obs_flags.load(std::memory_order_relaxed) &
          kTraceBit) != 0;
}
void SetMetricsEnabled(bool enabled);
void SetTraceEnabled(bool enabled);

/// Shard a recording thread writes to. Threads are assigned shards
/// round-robin on first use; multiple threads may share a shard (the slots
/// are atomic), they just contend a little. Recording never locks.
inline constexpr int kNumShards = 32;
int ShardIndex();

/// ---- Metric primitives -------------------------------------------------
///
/// Determinism contract: counters and histograms accumulate in integer /
/// fixed-point arithmetic only, so the merged snapshot is bit-identical no
/// matter how samples were spread across shards — i.e. identical at any
/// --threads value, provided the *recorded values* are themselves
/// deterministic (sim-time metrics and event counters are; wall-clock
/// timings are not, by nature). Merge order over shards is fixed
/// (ascending shard index) and addition is exact, so even a different
/// thread-to-shard assignment cannot change the result.

class Counter {
 public:
  /// Adds `n` (may be negative for corrections). Dropped when metrics are
  /// disabled.
  void Add(int64_t n = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  int64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kNumShards> shards_;
};

/// Last-writer-wins instantaneous value (e.g. pool size, queue depth).
/// Intended for single-writer call sites; concurrent writers race benignly.
/// Stores the double's bit pattern verbatim, so Set/Value round-trip
/// bit-exactly — including NaN, ±Inf, and -0.0 (the exporters render
/// non-finite values per the Prometheus exposition format).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(std::bit_cast<int64_t>(value), std::memory_order_relaxed);
  }
  double Value() const;
  void Reset();

  /// 1/1024 fixed-point conversion used by Histogram sum/min/max (exact
  /// shard merge); kept here for the shared clamping rules.
  static int64_t FixedFromDouble(double value);

 private:
  std::atomic<int64_t> value_{0};  // bit pattern of the double (0 == 0.0)
};

/// Log-bucketed histogram: bucket 0 holds values <= 0, bucket i >= 1 holds
/// values with floor(log2(v)) == i - 1 + kMinExponent (clamped at the
/// ends), i.e. power-of-two bucket boundaries covering ~1.5e-5 .. 7e13 in
/// the recorded unit. Sum / min / max are kept in 1/1024 fixed point so the
/// shard merge is exact (see the determinism contract above).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kMinExponent = -16;  // bucket 1 = (0, 2^-16]

  Histogram();

  void Record(double value) {
    if (!MetricsEnabled()) return;
    RecordAlways(value);
  }
  /// Record without the enabled check, for callers that already branched.
  void RecordAlways(double value);

  /// Bucket index a value lands in (deterministic, pure).
  static int BucketOf(double value);
  /// Exclusive upper bound of bucket `index` (+inf for the last): bucket b
  /// covers [BucketUpperBound(b-1), BucketUpperBound(b)).
  static double BucketUpperBound(int index);

  void Reset();

 private:
  friend class MetricsRegistry;
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kNumBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_fixed{0};
    std::atomic<int64_t> min_fixed{INT64_MAX};
    std::atomic<int64_t> max_fixed{INT64_MIN};
  };
  std::array<Shard, kNumShards> shards_;
};

/// ---- Snapshots ---------------------------------------------------------

struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::array<int64_t, Histogram::kNumBuckets> buckets{};

  double Mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Deterministic point-in-time view of every registered metric, keyed by
/// name (sorted, since std::map).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// ---- Registry ----------------------------------------------------------

/// Process-wide metric registry. Lookup by name locks a mutex (do it once,
/// cache the pointer — typically in a function-local static at the
/// instrumentation site); recording through the returned pointers is
/// lock-free. Returned pointers live for the process lifetime; Reset()
/// zeroes values but never invalidates them.
///
/// Naming scheme: `subsystem.metric[_unit]`, e.g. `sim.tuple_latency_ms`,
/// `phase.actor_forward_us`, `rl.ddpg.knn_failures`. `_us` metrics are
/// wall-clock timings (nondeterministic values); everything else records
/// deterministic quantities and snapshots bit-identically at any thread
/// count. See DESIGN.md §10.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Merged snapshot of all registered metrics (exact integer merge in
  /// ascending shard order; see the determinism contract).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric's value, keeping registrations (and pointers
  /// handed out earlier) valid. For tests and fresh measurement windows.
  void ResetValues();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// ---- Exporters ---------------------------------------------------------

/// Prometheus text exposition (metric names sanitized to [a-z0-9_] with a
/// `drlstream_` prefix; histograms as cumulative `le` buckets + _sum/_count).
/// Non-finite values render as `NaN` / `+Inf` / `-Inf` per the exposition
/// format.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// The sanitized exposition name for a registry metric: `drlstream_` +
/// the name with every character outside [A-Za-z0-9_] replaced by '_'.
/// Exposed for tests and for exporters layered on top (e.g. /metrics).
std::string PrometheusMetricName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string PrometheusEscapeLabelValue(const std::string& value);

/// Registry names may carry a label suffix: `base#key=value[,key=value...]`
/// (e.g. `sim.tuple_latency_ms#tenant=3`). The registry itself treats the
/// whole string as an opaque key; the Prometheus exporter splits it here
/// and renders `drlstream_sim_tuple_latency_ms{tenant="3"}` (values pass
/// through PrometheusEscapeLabelValue). Names without '#' have no labels
/// and render exactly as before. The JSON exporter keeps the raw name.
struct MetricNameParts {
  std::string base;
  std::vector<std::pair<std::string, std::string>> labels;
};
MetricNameParts SplitMetricName(const std::string& name);

/// JSON document: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, mean, min, max, buckets: [{le, count}, ...]}}}.
/// `indent` is prepended to every line (for embedding in a larger
/// document, e.g. core::SaveFaultRunJson).
std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::string& indent = "");

/// Writes `content` to `path`; returns false (with a note on stderr) on
/// I/O failure. obs deliberately has no Status dependency.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace drlstream::obs

#endif  // DRLSTREAM_OBS_METRICS_H_
