#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace drlstream::obs {

Tracer::Tracer() : start_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  // Leaked for the same reason as the MetricsRegistry: at-exit exporters
  // and late-dying threads may touch it after static destruction began.
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->tid = static_cast<int>(buffers_.size());
  }
  return buffer;
}

void Tracer::Append(Event event) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer->events.size() >= event_cap_.load(std::memory_order_relaxed)) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(std::move(event));
}

void Tracer::SetEventCapForTest(size_t cap) {
  event_cap_.store(cap == 0 ? kMaxEventsPerThread : cap,
                   std::memory_order_relaxed);
}

void Tracer::BeginWall(const std::string& name) {
  Append(Event{name, std::string(), NowUs(), -1.0, 'B', 1});
}

void Tracer::EndWall(const std::string& name) {
  Append(Event{name, std::string(), NowUs(), -1.0, 'E', 1});
}

void Tracer::AddWallSpan(const std::string& name, double start_us,
                         double end_us, std::string args_json) {
  if (!TraceEnabled()) return;
  Append(Event{name, std::move(args_json), start_us, -1.0, 'B', 1});
  Append(Event{name, std::string(), end_us, -1.0, 'E', 1});
}

void Tracer::AddWallInstant(const std::string& name, double ts_us,
                            std::string args_json) {
  if (!TraceEnabled()) return;
  Append(Event{name, std::move(args_json), ts_us, -1.0, 'i', 1});
}

void Tracer::AddSimSpan(const std::string& name, double start_ms,
                        double end_ms) {
  if (!TraceEnabled()) return;
  Append(Event{name, std::string(), start_ms * 1000.0, -1.0, 'B', 2});
  Append(Event{name, std::string(), end_ms * 1000.0, -1.0, 'E', 2});
}

void Tracer::AddSimInstant(const std::string& name, double ts_ms) {
  if (!TraceEnabled()) return;
  Append(Event{name, std::string(), ts_ms * 1000.0, -1.0, 'i', 2});
}

uint64_t NewSpanId() {
  // A per-process nonce (start times differ across processes) mixed with a
  // counter through the splitmix64 finalizer; never returns 0.
  static const uint64_t nonce = [] {
    const auto steady =
        std::chrono::steady_clock::now().time_since_epoch().count();
    const auto system =
        std::chrono::system_clock::now().time_since_epoch().count();
    return static_cast<uint64_t>(steady) ^
           (static_cast<uint64_t>(system) << 1);
  }();
  static std::atomic<uint64_t> counter{0};
  uint64_t x = nonce + 0x9E3779B97F4A7C15ull *
                           (counter.fetch_add(1, std::memory_order_relaxed) +
                            1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

size_t Tracer::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

size_t Tracer::dropped_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendMetadata(std::ostringstream& out, int pid, const char* name,
                    bool* first) {
  out << (*first ? "" : ",") << "\n  {\"name\": \"process_name\", "
      << "\"ph\": \"M\", \"ts\": 0, \"pid\": " << pid << ", \"tid\": 0, "
      << "\"args\": {\"name\": \"" << name << "\"}}";
  *first = false;
}

}  // namespace

std::string Tracer::ToJsonString() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out.precision(17);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  AppendMetadata(out, 1, "wall-clock", &first);
  AppendMetadata(out, 2, "sim-time", &first);
  // Per-thread buffers are concatenated in registration order; within a
  // buffer the original order is preserved, so every track's B/E pairs
  // stay balanced and properly nested. Viewers sort by ts themselves.
  size_t total_dropped = 0;
  for (const auto& buffer : buffers_) {
    total_dropped += buffer->dropped;
    auto emit = [&](const Event& event) {
      out << (first ? "" : ",") << "\n  {\"name\": \""
          << JsonEscape(event.name) << "\", \"cat\": \""
          << (event.pid == 2 ? "sim" : "wall") << "\", \"ph\": \""
          << event.ph << "\", \"ts\": " << event.ts_us
          << ", \"pid\": " << event.pid
          << ", \"tid\": " << (event.pid == 2 ? 0 : buffer->tid);
      if (event.ph == 'i') out << ", \"s\": \"t\"";
      if (!event.args.empty()) out << ", \"args\": " << event.args;
      out << "}";
      first = false;
    };
    double last_ts[2] = {0.0, 0.0};  // per timebase (pid 1 / pid 2)
    std::vector<const Event*> open[2];  // B events awaiting their E
    for (const Event& event : buffer->events) {
      emit(event);
      if (buffer->dropped == 0) continue;
      // Overflow dropped a suffix of this buffer, which can strand B
      // events without their E; track open spans so we can close them.
      const int tb = event.pid == 2 ? 1 : 0;
      if (event.ts_us > last_ts[tb]) last_ts[tb] = event.ts_us;
      if (event.ph == 'B') {
        open[tb].push_back(&event);
      } else if (event.ph == 'E' && !open[tb].empty()) {
        open[tb].pop_back();
      }
    }
    // Close stranded spans innermost-first at the track's last timestamp,
    // so an overflowed buffer still loads as a balanced trace.
    for (int tb = 1; tb >= 0; --tb) {
      for (auto it = open[tb].rbegin(); it != open[tb].rend(); ++it) {
        Event end = **it;
        end.args.clear();
        end.ph = 'E';
        end.ts_us = std::max(end.ts_us, last_ts[tb]);
        emit(end);
      }
    }
  }
  if (total_dropped > 0) {
    out << (first ? "" : ",") << "\n  {\"name\": \"trace_overflow\", "
        << "\"cat\": \"wall\", \"ph\": \"i\", \"ts\": 0, \"pid\": 1, "
        << "\"tid\": 0, \"s\": \"t\", \"args\": {\"dropped\": "
        << total_dropped << "}}";
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::WriteJson(const std::string& path) {
  const std::string json = ToJsonString();
  const size_t dropped = dropped_count();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "obs: trace buffer overflow, %zu events dropped "
                 "(cap %zu per thread)\n",
                 dropped, kMaxEventsPerThread);
  }
  return WriteTextFile(path, json);
}

}  // namespace drlstream::obs
