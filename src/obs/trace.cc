#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace drlstream::obs {

Tracer::Tracer() : start_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Get() {
  // Leaked for the same reason as the MetricsRegistry: at-exit exporters
  // and late-dying threads may touch it after static destruction began.
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->tid = static_cast<int>(buffers_.size());
  }
  return buffer;
}

void Tracer::Append(Event event) {
  ThreadBuffer* buffer = BufferForThisThread();
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(std::move(event));
}

void Tracer::BeginWall(const std::string& name) {
  Append(Event{name, NowUs(), -1.0, 'B', 1});
}

void Tracer::EndWall(const std::string& name) {
  Append(Event{name, NowUs(), -1.0, 'E', 1});
}

void Tracer::AddSimSpan(const std::string& name, double start_ms,
                        double end_ms) {
  if (!TraceEnabled()) return;
  Append(Event{name, start_ms * 1000.0, -1.0, 'B', 2});
  Append(Event{name, end_ms * 1000.0, -1.0, 'E', 2});
}

void Tracer::AddSimInstant(const std::string& name, double ts_ms) {
  if (!TraceEnabled()) return;
  Append(Event{name, ts_ms * 1000.0, -1.0, 'i', 2});
}

size_t Tracer::event_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  return total;
}

size_t Tracer::dropped_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped;
  return total;
}

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendMetadata(std::ostringstream& out, int pid, const char* name,
                    bool* first) {
  out << (*first ? "" : ",") << "\n  {\"name\": \"process_name\", "
      << "\"ph\": \"M\", \"ts\": 0, \"pid\": " << pid << ", \"tid\": 0, "
      << "\"args\": {\"name\": \"" << name << "\"}}";
  *first = false;
}

}  // namespace

std::string Tracer::ToJsonString() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out.precision(17);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  AppendMetadata(out, 1, "wall-clock", &first);
  AppendMetadata(out, 2, "sim-time", &first);
  // Per-thread buffers are concatenated in registration order; within a
  // buffer the original order is preserved, so every track's B/E pairs
  // stay balanced and properly nested. Viewers sort by ts themselves.
  for (const auto& buffer : buffers_) {
    for (const Event& event : buffer->events) {
      out << (first ? "" : ",") << "\n  {\"name\": \""
          << JsonEscape(event.name) << "\", \"cat\": \""
          << (event.pid == 2 ? "sim" : "wall") << "\", \"ph\": \""
          << event.ph << "\", \"ts\": " << event.ts_us
          << ", \"pid\": " << event.pid
          << ", \"tid\": " << (event.pid == 2 ? 0 : buffer->tid);
      if (event.ph == 'i') out << ", \"s\": \"t\"";
      out << "}";
      first = false;
    }
  }
  out << "\n]}\n";
  return out.str();
}

bool Tracer::WriteJson(const std::string& path) {
  const std::string json = ToJsonString();
  const size_t dropped = dropped_count();
  if (dropped > 0) {
    std::fprintf(stderr,
                 "obs: trace buffer overflow, %zu events dropped "
                 "(cap %zu per thread)\n",
                 dropped, kMaxEventsPerThread);
  }
  return WriteTextFile(path, json);
}

}  // namespace drlstream::obs
