#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace drlstream::obs {

namespace internal {
std::atomic<uint32_t> g_obs_flags{0};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  if (enabled) {
    internal::g_obs_flags.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    internal::g_obs_flags.fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

void SetTraceEnabled(bool enabled) {
  if (enabled) {
    internal::g_obs_flags.fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    internal::g_obs_flags.fetch_and(~kTraceBit, std::memory_order_relaxed);
  }
}

int ShardIndex() {
  static std::atomic<int> next_shard{0};
  thread_local const int shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

// ---- Counter --------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge ----------------------------------------------------------------

// 1/1024 fixed point: the scale is a power of two, so the double -> fixed
// conversion is an exact dyadic multiply followed by one deterministic
// rounding — identical on every thread and platform with IEEE doubles.
int64_t Gauge::FixedFromDouble(double value) {
  if (std::isnan(value)) return 0;  // llround(NaN) is unspecified
  const double scaled = value * 1024.0;
  // Clamp to the representable range instead of invoking UB on overflow.
  if (scaled >= 9.2e18) return INT64_MAX;
  if (scaled <= -9.2e18) return INT64_MIN;
  return std::llround(scaled);
}

double Gauge::Value() const {
  return std::bit_cast<double>(value_.load(std::memory_order_relaxed));
}

void Gauge::Reset() { value_.store(0, std::memory_order_relaxed); }

// ---- Histogram ------------------------------------------------------------

Histogram::Histogram() {
  for (Shard& shard : shards_) {
    shard.min_fixed.store(INT64_MAX, std::memory_order_relaxed);
    shard.max_fixed.store(INT64_MIN, std::memory_order_relaxed);
  }
}

int Histogram::BucketOf(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN
  const int e = std::ilogb(value);  // floor(log2(value)) for finite v > 0
  const int clamped =
      std::clamp(e, kMinExponent, kMinExponent + kNumBuckets - 2);
  return clamped - kMinExponent + 1;
}

double Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, index + kMinExponent);  // 2^(e+1) for the bucket
}

void Histogram::RecordAlways(double value) {
  Shard& shard = shards_[ShardIndex()];
  shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  const int64_t fixed = Gauge::FixedFromDouble(value);
  shard.sum_fixed.fetch_add(fixed, std::memory_order_relaxed);
  int64_t seen = shard.min_fixed.load(std::memory_order_relaxed);
  while (fixed < seen && !shard.min_fixed.compare_exchange_weak(
                             seen, fixed, std::memory_order_relaxed)) {
  }
  seen = shard.max_fixed.load(std::memory_order_relaxed);
  while (fixed > seen && !shard.max_fixed.compare_exchange_weak(
                             seen, fixed, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_fixed.store(0, std::memory_order_relaxed);
    shard.min_fixed.store(INT64_MAX, std::memory_order_relaxed);
    shard.max_fixed.store(INT64_MIN, std::memory_order_relaxed);
  }
}

// ---- Registry -------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked: instrumentation sites cache raw pointers and the at-exit
  // exporters read the registry after other static destructors ran.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot merged;
    int64_t sum_fixed = 0;
    int64_t min_fixed = INT64_MAX;
    int64_t max_fixed = INT64_MIN;
    for (const Histogram::Shard& shard : histogram->shards_) {
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        merged.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
      merged.count += shard.count.load(std::memory_order_relaxed);
      sum_fixed += shard.sum_fixed.load(std::memory_order_relaxed);
      min_fixed = std::min(min_fixed,
                           shard.min_fixed.load(std::memory_order_relaxed));
      max_fixed = std::max(max_fixed,
                           shard.max_fixed.load(std::memory_order_relaxed));
    }
    merged.sum = static_cast<double>(sum_fixed) / 1024.0;
    merged.min =
        merged.count > 0 ? static_cast<double>(min_fixed) / 1024.0 : 0.0;
    merged.max =
        merged.count > 0 ? static_cast<double>(max_fixed) / 1024.0 : 0.0;
    snapshot.histograms[name] = merged;
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ---- Exporters ------------------------------------------------------------

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "drlstream_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

// Exposition-format float rendering: non-finite values must spell as
// NaN / +Inf / -Inf (a bare locale "nan"/"inf" is not scrapeable).
void AppendNumber(std::ostringstream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    out << value;
  }
}

// JSON has no literal for non-finite numbers; render them as strings so
// the document stays parseable.
void AppendJsonNumber(std::ostringstream& out, double value) {
  if (std::isnan(value)) {
    out << "\"NaN\"";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "\"+Inf\"" : "\"-Inf\"");
  } else {
    out << value;
  }
}

}  // namespace

MetricNameParts SplitMetricName(const std::string& name) {
  MetricNameParts parts;
  const size_t hash = name.find('#');
  if (hash == std::string::npos) {
    parts.base = name;
    return parts;
  }
  // The suffix must be entirely well-formed `key=value` pairs (keys match
  // [A-Za-z_][A-Za-z0-9_]*); otherwise the '#' is treated as part of a
  // hostile name and the whole string falls through to the sanitizer.
  std::vector<std::pair<std::string, std::string>> labels;
  size_t pos = hash + 1;
  while (pos <= name.size()) {
    size_t end = name.find(',', pos);
    if (end == std::string::npos) end = name.size();
    const std::string pair = name.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      parts.base = name;
      return parts;
    }
    const std::string key = pair.substr(0, eq);
    for (size_t i = 0; i < key.size(); ++i) {
      const char c = key[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || (i > 0 && c >= '0' && c <= '9');
      if (!ok) {
        parts.base = name;
        return parts;
      }
    }
    labels.emplace_back(key, pair.substr(eq + 1));
    if (end == name.size()) break;
    pos = end + 1;
  }
  parts.base = name.substr(0, hash);
  parts.labels = std::move(labels);
  return parts;
}

namespace {

// `{tenant="3"}` rendered from the label suffix, with `extra` (e.g. the
// histogram `le` bound) appended. Empty string when there are no labels and
// no extra — bare-name series render exactly as before the label scheme.
std::string PrometheusLabelSet(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;  // keys were validated by SplitMetricName
    out += "=\"" + PrometheusEscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& [name, value] : snapshot.counters) {
    const MetricNameParts parts = SplitMetricName(name);
    const std::string prom = PrometheusMetricName(parts.base);
    const std::string labels = PrometheusLabelSet(parts.labels);
    out << "# TYPE " << prom << " counter\n"
        << prom << labels << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const MetricNameParts parts = SplitMetricName(name);
    const std::string prom = PrometheusMetricName(parts.base);
    out << "# TYPE " << prom << " gauge\n"
        << prom << PrometheusLabelSet(parts.labels) << " ";
    AppendNumber(out, value);
    out << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const MetricNameParts parts = SplitMetricName(name);
    const std::string prom = PrometheusMetricName(parts.base);
    out << "# TYPE " << prom << " histogram\n";
    // Cumulative buckets; empty deltas are skipped except the mandatory
    // +Inf bound, keeping the exposition compact but still monotone.
    int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      cumulative += hist.buckets[b];
      std::ostringstream le;
      le.precision(17);
      le << "le=\"";
      AppendNumber(le, Histogram::BucketUpperBound(b));
      le << "\"";
      out << prom << "_bucket" << PrometheusLabelSet(parts.labels, le.str())
          << " " << cumulative << "\n";
    }
    out << prom << "_bucket"
        << PrometheusLabelSet(parts.labels, "le=\"+Inf\"") << " "
        << hist.count << "\n";
    out << prom << "_sum" << PrometheusLabelSet(parts.labels) << " ";
    AppendNumber(out, hist.sum);
    out << "\n";
    out << prom << "_count" << PrometheusLabelSet(parts.labels) << " "
        << hist.count << "\n";
  }
  return out.str();
}

std::string ToJson(const MetricsSnapshot& snapshot,
                   const std::string& indent) {
  std::ostringstream out;
  out.precision(17);
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";
  out << "{\n";

  out << i1 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << name << "\": ";
    AppendJsonNumber(out, value);
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "},\n";

  out << i1 << "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << i2 << "\"" << name << "\": {"
        << "\"count\": " << hist.count << ", \"sum\": ";
    AppendJsonNumber(out, hist.sum);
    out << ", \"mean\": ";
    AppendJsonNumber(out, hist.Mean());
    out << ", \"min\": ";
    AppendJsonNumber(out, hist.min);
    out << ", \"max\": ";
    AppendJsonNumber(out, hist.max);
    out << ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) out << ", ";
      first_bucket = false;
      out << "{\"le\": ";
      const double le = Histogram::BucketUpperBound(b);
      if (std::isinf(le)) {
        out << "\"+Inf\"";
      } else {
        out << le;
      }
      out << ", \"count\": " << hist.buckets[b] << "}";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n" + i1) << "}\n";

  out << indent << "}";
  return out.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << content;
  if (!out.good()) {
    std::fprintf(stderr, "obs: write failed: %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace drlstream::obs
