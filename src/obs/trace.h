#ifndef DRLSTREAM_OBS_TRACE_H_
#define DRLSTREAM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace drlstream::obs {

/// Scoped-span tracer for the decision pipeline, exported as Chrome
/// trace-event JSON (loadable in Perfetto / chrome://tracing). Two
/// timebases, rendered as two trace "processes":
///
///   pid 1 "wall-clock" — compute phases (actor forward, per-candidate
///     MIQP solve, critic scoring, train-step sub-phases, deployment).
///     Timestamps are microseconds of std::chrono::steady_clock since the
///     process start; one track (tid) per recording thread.
///   pid 2 "sim-time"   — simulator events (migrations, faults) stamped
///     with *simulated* milliseconds, so a replay of a deterministic fault
///     plan produces an identical sim-time track at any thread count.
///
/// Recording is lock-free after a thread's first event (per-thread
/// buffers); disabled tracing costs one relaxed load + branch. Buffers cap
/// at kMaxEventsPerThread events; the overflow is counted and reported.
class Tracer {
 public:
  static constexpr size_t kMaxEventsPerThread = 1u << 20;

  static Tracer& Get();

  /// Wall-clock duration span (ph "B"/"E") on the calling thread's track.
  /// Call through WallSpan, which pairs them exception-free.
  void BeginWall(const std::string& name);
  void EndWall(const std::string& name);

  /// Wall-clock span with explicit tracer-epoch microsecond stamps and an
  /// optional args payload — for recorders that learn a span's boundaries
  /// after the fact (the AgentServer stamps a request at receive time and
  /// records the span once the reply is encoded). `args_json` must be a
  /// complete JSON object ("{...}") or empty; it is emitted verbatim.
  void AddWallSpan(const std::string& name, double start_us, double end_us,
                   std::string args_json = std::string());
  /// Wall-clock instant (ph "i") with explicit stamp + args — e.g. the
  /// client's clock-offset estimate that scripts/merge_traces.py reads.
  void AddWallInstant(const std::string& name, double ts_us,
                      std::string args_json = std::string());

  /// Sim-time span / instant with explicit simulated-millisecond stamps.
  /// Emitted as a balanced B/E pair (span) or a ph "i" instant.
  void AddSimSpan(const std::string& name, double start_ms, double end_ms);
  void AddSimInstant(const std::string& name, double ts_ms);

  /// Writes the merged trace (all thread buffers + process-name metadata)
  /// as Chrome trace-event JSON. Returns false on I/O failure. Events stay
  /// buffered; call ResetForTest to clear.
  bool WriteJson(const std::string& path);
  /// The same document as a string (tests, embedding).
  std::string ToJsonString();

  /// Events recorded so far (all threads) and events dropped to the cap.
  size_t event_count();
  size_t dropped_count();

  /// Clears every buffer (registrations persist; safe while threads that
  /// recorded earlier are still alive).
  void ResetForTest();

  /// Overrides the per-thread event cap (tests exercise overflow without
  /// allocating kMaxEventsPerThread events). 0 restores the default.
  void SetEventCapForTest(size_t cap);

 private:
  struct Event {
    std::string name;
    std::string args;  // complete JSON object ("{...}") or empty
    double ts_us = 0.0;  // wall: us since process start; sim: sim_ms * 1000
    double dur_us = -1.0;  // only for ph 'X' (unused today)
    char ph = 'B';
    int pid = 1;
  };

  struct ThreadBuffer {
    std::vector<Event> events;
    size_t dropped = 0;
    int tid = 0;
  };

  Tracer();
  ThreadBuffer* BufferForThisThread();
  void Append(Event event);

  std::chrono::steady_clock::time_point start_;
  std::mutex mutex_;  // guards registration + WriteJson/Reset
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<size_t> event_cap_{kMaxEventsPerThread};

 public:
  /// Microseconds since the tracer epoch (process start), wall clock.
  double NowUs() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
};

/// A fresh process-unique, non-zero 64-bit id for distributed tracing
/// (trace ids and span ids on the wire; 0 means "no trace"). Mixes a
/// per-process nonce with an atomic counter, so two processes started at
/// different times do not collide in a merged trace.
uint64_t NewSpanId();

/// RAII wall-clock span; no-op when tracing is disabled at construction.
class WallSpan {
 public:
  explicit WallSpan(const char* name) {
    if (TraceEnabled()) {
      name_ = name;
      Tracer::Get().BeginWall(name_);
    }
  }
  ~WallSpan() {
    if (name_ != nullptr) Tracer::Get().EndWall(name_);
  }
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

 private:
  const char* name_ = nullptr;
};

/// One observed compute phase: a wall-clock histogram sample (microseconds
/// into `hist_us`) and a trace span, each emitted only when its subsystem
/// is enabled. The clock is read only when at least one of them is on, so
/// a fully disabled build costs one relaxed load + branch per phase.
class ScopedPhase {
 public:
  ScopedPhase(Histogram* hist_us, const char* name)
      : hist_(MetricsEnabled() ? hist_us : nullptr) {
    const bool trace = TraceEnabled();
    if (hist_ != nullptr || trace) {
      start_us_ = Tracer::Get().NowUs();
      if (trace) {
        name_ = name;
        Tracer::Get().BeginWall(name_);
      }
    }
  }
  ~ScopedPhase() {
    if (name_ != nullptr) Tracer::Get().EndWall(name_);
    if (hist_ != nullptr) {
      hist_->RecordAlways(Tracer::Get().NowUs() - start_us_);
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Histogram* hist_;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace drlstream::obs

#endif  // DRLSTREAM_OBS_TRACE_H_
