#include "miqp/knn_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace drlstream::miqp {
namespace {

/// Registered together so a snapshot always reports solve_failures (as 0)
/// alongside solves, not only after the first failure.
struct MiqpMetrics {
  obs::Counter* solves;
  obs::Counter* solve_failures;
};

const MiqpMetrics& Metrics() {
  static const MiqpMetrics metrics = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
    return MiqpMetrics{
        reg.counter("miqp.solves"),
        reg.counter("miqp.solve_failures"),
    };
  }();
  return metrics;
}

/// Per-row option: assigning the row's executor to `machine` costs `cost`.
struct RowOption {
  double cost;
  int machine;
};

/// Sorted (ascending cost, then machine) options for every row. Disallowed
/// machines (mask 0) are excluded up front, so the feasible set itself —
/// not a post-hoc filter — respects the mask.
std::vector<std::vector<RowOption>> BuildRowOptions(
    const std::vector<double>& proto, int n, int m,
    const std::vector<uint8_t>* machine_allowed) {
  std::vector<std::vector<RowOption>> rows(n);
  for (int i = 0; i < n; ++i) {
    const double* row = proto.data() + static_cast<size_t>(i) * m;
    double norm_sq = 0.0;
    for (int j = 0; j < m; ++j) norm_sq += row[j] * row[j];
    rows[i].reserve(m);
    for (int j = 0; j < m; ++j) {
      if (machine_allowed != nullptr && !(*machine_allowed)[j]) continue;
      rows[i].push_back(RowOption{norm_sq + 1.0 - 2.0 * row[j], j});
    }
    std::sort(rows[i].begin(), rows[i].end(),
              [](const RowOption& a, const RowOption& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.machine < b.machine;
              });
  }
  return rows;
}

Status CheckArgs(const std::vector<double>& proto, int n, int m, int k,
                 const std::vector<uint8_t>* machine_allowed) {
  if (n <= 0 || m <= 0) {
    return Status::InvalidArgument("dimensions must be positive");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (proto.size() != static_cast<size_t>(n) * m) {
    return Status::InvalidArgument("proto-action has wrong size");
  }
  for (double v : proto) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("proto-action contains non-finite value");
    }
  }
  if (machine_allowed != nullptr) {
    if (machine_allowed->size() != static_cast<size_t>(m)) {
      return Status::InvalidArgument("machine mask has wrong size");
    }
    bool any = false;
    for (uint8_t allowed : *machine_allowed) any = any || allowed != 0;
    if (!any) {
      return Status::InvalidArgument(
          "machine mask allows no machine (cluster fully down?)");
    }
  }
  return Status::OK();
}

/// Number of machines the mask admits (m when there is no mask).
int AllowedCount(int m, const std::vector<uint8_t>* machine_allowed) {
  if (machine_allowed == nullptr) return m;
  int count = 0;
  for (uint8_t allowed : *machine_allowed) count += allowed ? 1 : 0;
  return count;
}

/// Caps k at M^N without overflowing.
int CapK(int k, int n, int m) {
  double total = 1.0;
  for (int i = 0; i < n; ++i) {
    total *= m;
    if (total >= k) return k;
  }
  return static_cast<int>(total);
}

}  // namespace

double ActionDistanceSquared(const sched::Schedule& action,
                             const std::vector<double>& proto) {
  const int n = action.num_executors();
  const int m = action.num_machines();
  DRLSTREAM_CHECK_EQ(proto.size(), static_cast<size_t>(n) * m);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double* row = proto.data() + static_cast<size_t>(i) * m;
    const int assigned = action.MachineOf(i);
    for (int j = 0; j < m; ++j) {
      const double target = (j == assigned) ? 1.0 : 0.0;
      const double d = target - row[j];
      sum += d * d;
    }
  }
  return sum;
}

KnnActionSolver::KnnActionSolver(int num_executors, int num_machines)
    : num_executors_(num_executors), num_machines_(num_machines) {
  DRLSTREAM_CHECK_GT(num_executors, 0);
  DRLSTREAM_CHECK_GT(num_machines, 0);
}

namespace {

/// Stable sort of partials by ascending excess, using caller-owned scratch
/// instead of std::stable_sort's internal temporary buffer. Stability makes
/// the output ordering unique, so this matches std::stable_sort exactly.
void StableSortByExcess(std::vector<KnnWorkspace::Partial>* v,
                        std::vector<KnnWorkspace::Partial>* tmp) {
  using Partial = KnnWorkspace::Partial;
  const size_t n = v->size();
  if (n < 2) return;
  tmp->resize(n);
  std::vector<Partial>* src = v;
  std::vector<Partial>* dst = tmp;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo < n; lo += 2 * width) {
      const size_t mid = std::min(lo + width, n);
      const size_t hi = std::min(lo + 2 * width, n);
      size_t a = lo, b = mid, out = lo;
      while (a < mid && b < hi) {
        // Take from the right run only on strict less-than: equal keys keep
        // left-run (original) order.
        (*dst)[out++] = ((*src)[b].excess < (*src)[a].excess) ? (*src)[b++]
                                                              : (*src)[a++];
      }
      while (a < mid) (*dst)[out++] = (*src)[a++];
      while (b < hi) (*dst)[out++] = (*src)[b++];
    }
    std::swap(src, dst);
  }
  if (src != v) v->assign(src->begin(), src->end());
}

}  // namespace

StatusOr<KnnResult> KnnActionSolver::Solve(
    const std::vector<double>& proto, int k,
    const std::vector<uint8_t>* machine_allowed) const {
  KnnWorkspace ws;
  KnnResult result;
  DRLSTREAM_RETURN_NOT_OK(SolveInto(proto, k, machine_allowed, &ws, &result));
  return result;
}

Status KnnActionSolver::SolveInto(
    const std::vector<double>& proto, int k,
    const std::vector<uint8_t>* machine_allowed, KnnWorkspace* ws,
    KnnResult* result) const {
  using Partial = KnnWorkspace::Partial;
  using RowOption = KnnWorkspace::RowOption;
  Metrics().solves->Add(1);
  const Status args_ok =
      CheckArgs(proto, num_executors_, num_machines_, k, machine_allowed);
  if (!args_ok.ok()) {
    Metrics().solve_failures->Add(1);
    return args_ok;
  }
  const int n = num_executors_;
  const int m = num_machines_;
  const int allowed = AllowedCount(m, machine_allowed);
  k = CapK(k, n, allowed);

  // Per-row options sorted by (ascending cost, then machine), with
  // disallowed machines excluded up front so the feasible set itself — not
  // a post-hoc filter — respects the mask. The mask is column-wise, so
  // every row has exactly `allowed` options and the lists flatten to one
  // row-major array.
  ws->options.resize(static_cast<size_t>(n) * allowed);
  for (int i = 0; i < n; ++i) {
    const double* row = proto.data() + static_cast<size_t>(i) * m;
    double norm_sq = 0.0;
    for (int j = 0; j < m; ++j) norm_sq += row[j] * row[j];
    RowOption* opts = ws->options.data() + static_cast<size_t>(i) * allowed;
    int count = 0;
    for (int j = 0; j < m; ++j) {
      if (machine_allowed != nullptr && !(*machine_allowed)[j]) continue;
      opts[count++] = RowOption{norm_sq + 1.0 - 2.0 * row[j], j};
    }
    std::sort(opts, opts + allowed,
              [](const RowOption& a, const RowOption& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.machine < b.machine;
              });
  }
  const auto row_opts = [&](int i) {
    return ws->options.data() + static_cast<size_t>(i) * allowed;
  };

  // Work with *excess* costs above the 1-NN: each partial solution is a
  // sparse set of deviations (row -> option index > 0) from the per-row
  // minimum. Folding a row in adds, for every kept partial, the unchanged
  // partial (option 0, zero excess) plus deviated copies — so copies are
  // made only for actual deviations, and rows whose cheapest deviation
  // cannot beat the current k-th best are skipped entirely. Processing rows
  // by ascending cheapest-deviation excess establishes a tight bound early.
  // Deviation sets are parent-linked chains into dev_arena, so extending a
  // partial is O(1) and nothing is copied per deviation.
  ws->row_order.clear();
  for (int i = 0; i < n; ++i) {
    if (allowed > 1) ws->row_order.push_back(i);
  }
  std::sort(ws->row_order.begin(), ws->row_order.end(),
            [&row_opts](int a, int b) {
              return row_opts(a)[1].cost - row_opts(a)[0].cost <
                     row_opts(b)[1].cost - row_opts(b)[0].cost;
            });

  ws->dev_arena.clear();
  ws->best.clear();
  ws->best.push_back(Partial{0.0, -1});
  for (int i : ws->row_order) {
    std::vector<Partial>& best = ws->best;
    std::vector<Partial>& merged = ws->merged;
    const bool full = static_cast<int>(best.size()) >= k;
    const double bound = full ? best.back().excess
                              : std::numeric_limits<double>::infinity();
    const RowOption* opts = row_opts(i);
    const double min_dev = opts[1].cost - opts[0].cost;
    if (full && min_dev >= bound) {
      // No deviation in this (or any later, by the sort) row can enter the
      // top k; all remaining rows stay at their best option.
      break;
    }
    merged.clear();
    for (const Partial& partial : best) {
      merged.push_back(partial);  // Option 0: unchanged.
    }
    const int max_opt = std::min(allowed - 1, k);
    for (const Partial& partial : best) {
      for (int o = 1; o <= max_opt; ++o) {
        const double excess = partial.excess + opts[o].cost - opts[0].cost;
        if (full && excess >= bound) break;  // Options sorted ascending.
        ws->dev_arena.push_back(
            KnnWorkspace::DevNode{i, o, partial.dev_head});
        merged.push_back(
            Partial{excess, static_cast<int>(ws->dev_arena.size()) - 1});
      }
    }
    StableSortByExcess(&merged, &ws->sort_tmp);
    if (merged.size() > static_cast<size_t>(k)) merged.resize(k);
    std::swap(best, merged);
  }

  const int count = static_cast<int>(ws->best.size());
  if (static_cast<int>(result->actions.size()) > count) {
    result->actions.erase(result->actions.begin() + count,
                          result->actions.end());
  }
  while (static_cast<int>(result->actions.size()) < count) {
    result->actions.emplace_back(n, m);
  }
  result->squared_distances.clear();
  for (int c = 0; c < count; ++c) {
    const Partial& partial = ws->best[c];
    sched::Schedule& action = result->actions[c];
    action.Reset(n, m);
    for (int i = 0; i < n; ++i) {
      action.Assign(i, row_opts(i)[0].machine);
    }
    // Rows are distinct within a chain, so walking it parent-first or
    // child-first assigns the same machines.
    for (int node = partial.dev_head; node >= 0;
         node = ws->dev_arena[node].parent) {
      const KnnWorkspace::DevNode& dev = ws->dev_arena[node];
      action.Assign(dev.row, row_opts(dev.row)[dev.option].machine);
    }
    result->squared_distances.push_back(ActionDistanceSquared(action, proto));
  }
  return Status::OK();
}

StatusOr<KnnResult> SolveKnnBranchAndBound(
    const std::vector<double>& proto, int num_executors, int num_machines,
    int k, const std::vector<uint8_t>* machine_allowed) {
  DRLSTREAM_RETURN_NOT_OK(
      CheckArgs(proto, num_executors, num_machines, k, machine_allowed));
  k = CapK(k, num_executors, AllowedCount(num_machines, machine_allowed));

  const std::vector<std::vector<RowOption>> rows =
      BuildRowOptions(proto, num_executors, num_machines, machine_allowed);
  // Suffix lower bounds: sum of row minima for rows >= i.
  std::vector<double> suffix_min(num_executors + 1, 0.0);
  for (int i = num_executors - 1; i >= 0; --i) {
    suffix_min[i] = suffix_min[i + 1] + rows[i][0].cost;
  }

  // Best-first search over partial assignments.
  struct Node {
    double bound;  // partial cost + suffix lower bound
    double cost;   // partial cost
    std::vector<int> machines;
  };
  auto later = [](const Node& a, const Node& b) { return a.bound > b.bound; };
  std::priority_queue<Node, std::vector<Node>, decltype(later)> open(later);
  open.push(Node{suffix_min[0], 0.0, {}});

  KnnResult result;
  while (!open.empty() && static_cast<int>(result.actions.size()) < k) {
    Node node = open.top();
    open.pop();
    const int depth = static_cast<int>(node.machines.size());
    if (depth == num_executors) {
      auto action_or =
          sched::Schedule::FromAssignments(node.machines, num_machines);
      DRLSTREAM_CHECK(action_or.ok());
      result.squared_distances.push_back(
          ActionDistanceSquared(*action_or, proto));
      result.actions.push_back(std::move(*action_or));
      continue;
    }
    for (const RowOption& opt : rows[depth]) {
      Node child;
      child.cost = node.cost + opt.cost;
      child.bound = child.cost + suffix_min[depth + 1];
      child.machines = node.machines;
      child.machines.push_back(opt.machine);
      open.push(std::move(child));
    }
  }
  return result;
}

}  // namespace drlstream::miqp
