#ifndef DRLSTREAM_MIQP_KNN_SOLVER_H_
#define DRLSTREAM_MIQP_KNN_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sched/schedule.h"

namespace drlstream::miqp {

/// K nearest feasible actions to a proto-action, ascending by squared
/// euclidean distance.
struct KnnResult {
  std::vector<sched::Schedule> actions;
  std::vector<double> squared_distances;
};

/// Reusable scratch for SolveInto: every intermediate of the fold lives in
/// flat arrays that keep their capacity across solves, so steady-state
/// solves of the same problem shape perform zero heap allocations. One
/// workspace per concurrent solve (e.g. one per parallel target slot).
struct KnnWorkspace {
  /// Assigning a row's executor to `machine` costs `cost`. The mask is
  /// column-wise, so every row admits the same machines and the per-row
  /// option lists flatten to one n x allowed_count array.
  struct RowOption {
    double cost;
    int machine;
  };
  /// A partial solution: total excess cost above the per-row minima, plus
  /// its deviations as a parent-linked chain into `dev_arena` (-1 = none).
  /// Rows are distinct within a chain, so application order is irrelevant.
  struct Partial {
    double excess;
    int dev_head;
  };
  struct DevNode {
    int row;
    int option;  // index > 0 into the row's sorted options
    int parent;
  };

  std::vector<RowOption> options;  // flattened, row-major
  std::vector<int> row_order;
  std::vector<Partial> best;
  std::vector<Partial> merged;
  std::vector<Partial> sort_tmp;
  std::vector<DevNode> dev_arena;
};

/// Solves the paper's MIQP-NN problem (Section 3.2.1):
///
///   min_a ||a - a_hat||^2   s.t.  sum_j a_ij = 1,  a_ij in {0,1}
///
/// iterated K times to produce the K nearest feasible actions. The paper
/// uses Gurobi; this solver is exact and typically much faster because the
/// objective is row-separable: with per-row option costs
/// c_ij = ||a_hat_i||^2 + 1 - 2 a_hat_ij, the k best assignment matrices are
/// the k smallest sums of one option per row, enumerated by folding rows
/// while keeping the K best partial prefixes (each fold is exact because row
/// options are processed in ascending cost order).
class KnnActionSolver {
 public:
  KnnActionSolver(int num_executors, int num_machines);

  /// `proto` is the flattened N x M proto-action (row i = executor i).
  /// Returns min(k, M'^N) actions in ascending distance order; ties are
  /// broken deterministically (lower machine indices first).
  ///
  /// `machine_allowed` (optional, size M, 1 = allowed) restricts the
  /// feasible set column-wise *before* the solve: machines that are down
  /// never appear in any returned action, so every candidate handed to the
  /// critic is deployable. M' is the number of allowed machines; an
  /// all-zero mask is an error (nowhere to schedule).
  StatusOr<KnnResult> Solve(
      const std::vector<double>& proto, int k,
      const std::vector<uint8_t>* machine_allowed = nullptr) const;

  /// Allocation-free variant of Solve: scratch comes from `ws` and the
  /// result is written into `*result`, reusing both objects' storage (the
  /// result's Schedules are Reset in place). After warmup at a fixed
  /// problem shape, steady-state calls perform zero heap allocations.
  /// Results are bit-identical to Solve(). Not thread-safe per
  /// (ws, result) pair; concurrent callers use distinct pairs.
  Status SolveInto(const std::vector<double>& proto, int k,
                   const std::vector<uint8_t>* machine_allowed,
                   KnnWorkspace* ws, KnnResult* result) const;

  int num_executors() const { return num_executors_; }
  int num_machines() const { return num_machines_; }

 private:
  int num_executors_;
  int num_machines_;
};

/// Reference oracle: exact best-first branch-and-bound over the same
/// constraint set (one machine per executor row). Exponential worst case;
/// used by tests to validate KnnActionSolver and by the micro benches to
/// show the separable solver's advantage.
StatusOr<KnnResult> SolveKnnBranchAndBound(
    const std::vector<double>& proto, int num_executors, int num_machines,
    int k, const std::vector<uint8_t>* machine_allowed = nullptr);

/// Squared euclidean distance between a feasible action and a proto-action.
double ActionDistanceSquared(const sched::Schedule& action,
                             const std::vector<double>& proto);

}  // namespace drlstream::miqp

#endif  // DRLSTREAM_MIQP_KNN_SOLVER_H_
