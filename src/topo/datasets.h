#ifndef DRLSTREAM_TOPO_DATASETS_H_
#define DRLSTREAM_TOPO_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace drlstream::topo {

/// One row of the in-memory vehicle table used by the continuous-queries
/// application (paper Section 4.1: plates, owners, SSNs, and a speed
/// attached to every entry).
struct VehicleRecord {
  std::string plate;
  std::string owner;
  std::string ssn;
  int speed_mph = 0;
};

/// Generates a random vehicle table of `num_rows` rows. Speeds are uniform
/// in [35, 95] mph.
std::vector<VehicleRecord> MakeVehicleTable(int num_rows, Rng* rng);

/// A randomly generated "owners of speeding vehicles" query: find rows with
/// speed above `speed_threshold` whose plate starts with `plate_prefix`
/// (possibly empty = any plate).
struct SpeedQuery {
  int speed_threshold = 0;
  std::string plate_prefix;
};

SpeedQuery MakeRandomQuery(Rng* rng);

/// Serializes/parses a query to/from the tuple text payload.
std::string SerializeQuery(const SpeedQuery& query);
SpeedQuery ParseQuery(const std::string& text);

/// Generates one Microsoft-IIS-style log line:
/// "date time client-ip method uri status bytes time-taken".
std::string MakeLogLine(Rng* rng);

/// A parsed log entry produced by the LogRules bolt.
struct LogEntry {
  std::string method;
  std::string uri;
  int status = 0;
  int bytes = 0;
  bool is_error = false;  // status >= 400
};

/// Parses a log line produced by MakeLogLine; returns false on malformed
/// input.
bool ParseLogLine(const std::string& line, LogEntry* entry);

/// Lines of public-domain text (from Alice's Adventures in Wonderland) used
/// by the word-count application; the spout cycles through them.
const std::vector<std::string>& AliceLines();

/// Splits a line into lowercase words (alphabetic runs).
std::vector<std::string> SplitWords(const std::string& line);

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_DATASETS_H_
