#ifndef DRLSTREAM_TOPO_CLUSTER_H_
#define DRLSTREAM_TOPO_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace drlstream::topo {

/// Live capability state of one machine: whether it is up, and the
/// degradations currently in effect. The static ClusterConfig below
/// describes the healthy cluster; MachineHealth is what faults (crash,
/// straggler, link spike — see sim/faults.h) mutate at runtime, and what
/// the control loop reads back to mask dead machines out of its candidate
/// actions.
struct MachineHealth {
  bool up = true;
  /// Service-time multiplier in effect (> 1 = straggler; 1 = nominal).
  double speed_factor = 1.0;
  /// Extra latency added to every inter-machine transfer leaving this
  /// machine's uplink, in ms (0 = nominal).
  double link_extra_ms = 0.0;
};

/// Per-machine up/down flags (1 = up) from a health vector — the mask the
/// schedulers and the K-NN action solver consume.
std::vector<uint8_t> UpMask(const std::vector<MachineHealth>& healths);

/// Number of machines that are up. An empty mask means "all up" by
/// convention throughout the control loop.
int AliveCount(const std::vector<uint8_t>& up_mask);

/// Fills `out` (cleared first) with the indices of machines that are up —
/// an empty mask lists every machine, per the convention above. The one
/// shared mask-to-machine-list path for schedulers and agents; callers on
/// hot paths pass a reused scratch vector to stay allocation-free.
void AliveMachineList(const std::vector<uint8_t>& up_mask, int num_machines,
                      std::vector<int>* out);

/// Power model of one worker machine: per-state wattage plus the deep-sleep
/// transition behaviour. Defaults approximate a commodity dual-socket server
/// (active ~190 W, idle ~95 W, suspend-to-RAM ~9 W, ~3 s wake). Deep sleep
/// is opt-in: with `sleep_after_idle_ms < 0` (the default) machines never
/// sleep and energy accounting reduces to an active/idle dwell ledger, so
/// existing trajectories are untouched.
struct MachineSpec {
  /// Draw while at least one hosted executor is mid-service (W).
  double active_watts = 190.0;
  /// Draw while up but with no executor in service (W).
  double idle_watts = 95.0;
  /// Draw in deep sleep — and, approximately, while crashed (W).
  double sleep_watts = 9.0;
  /// Latency of a deep-sleep -> active transition; executors landing on a
  /// sleeping machine stay paused this long (ms).
  double wake_ms = 3000.0;
  /// A machine hosting no executors of any active tenant enters deep sleep
  /// after idling this long; < 0 disables sleeping entirely (default).
  double sleep_after_idle_ms = -1.0;
};

/// Physical cluster description, modeled after the paper's testbed: 10 worker
/// machines (plus a master), each with a quad-core CPU and 10 slots,
/// connected by a 1 Gbps network.
///
/// Timing parameters model the two effects that make scheduling matter:
///  * communication: an intra-process hop is cheap; an inter-machine hop pays
///    the sender's serialized NIC (per-tuple overhead + wire time) plus a
///    fixed base latency, so inter-machine traffic both costs more per hop
///    and queues under load;
///  * computation: executor service times are scaled by CPU contention on
///    the machine (busy executors / cores) when a machine is oversubscribed.
struct ClusterConfig {
  int num_machines = 10;
  int slots_per_machine = 10;
  /// Cores effectively available to executor threads on each quad-core
  /// worker machine (the remainder serves the OS, the supervisor daemon,
  /// ackers and JVM overheads). Two is what makes the simulated cluster's
  /// locality-vs-contention tradeoff match the paper's testbed behaviour:
  /// packing the whole topology on one machine overloads it, spreading
  /// everything maximizes communication delay, and the optimum lies
  /// in between.
  int cores_per_machine = 2;

  /// Delay for a hop between executors in the same worker process (ms).
  double local_hop_ms = 0.02;
  /// Delay for a hop between two worker processes on the same machine
  /// (loopback serialization; no NIC queueing). The paper (citing [52])
  /// notes that splitting an application across multiple processes on one
  /// machine seriously degrades performance — this is why its schedulers
  /// enforce one worker process per machine while Storm's default scheduler
  /// deals executors over many pre-configured processes.
  double interprocess_hop_ms = 0.35;
  /// Fixed extra latency for an inter-machine hop (propagation + kernel +
  /// deserialization), in ms.
  double remote_base_ms = 0.70;
  /// Per-tuple serialization/NIC overhead paid on the sender's uplink (ms);
  /// transfers on one uplink are serialized, so this creates queueing.
  double nic_per_tuple_ms = 0.06;
  /// Uplink bandwidth in Mbps (1 Gbps in the paper's cluster).
  double nic_bandwidth_mbps = 1000.0;

  /// Pause experienced by a migrated executor when a new scheduling solution
  /// re-assigns it (state transfer + process spin-up), in ms. Produces the
  /// transient spikes of Fig. 12.
  double migration_pause_ms = 1500.0;

  /// Load-aware shuffle routing (Storm 1.x LoadAwareShuffleGrouping):
  /// same-process targets are preferred while their queue depth is at most
  /// this threshold; beyond it tuples spill to the less loaded of two
  /// random targets anywhere in the cluster.
  int shuffle_spill_queue_len = 4;

  /// Tuples not fully acked within this horizon are failed and replayed by
  /// the data source (Storm's acknowledgment timeout), in ms.
  double ack_timeout_ms = 30000.0;

  /// Power model shared by every worker machine (energy accounting and the
  /// deep-sleep state machine in sim::ClusterSim).
  MachineSpec machine;

  /// Returns InvalidArgument if any field is non-positive/inconsistent.
  Status Validate() const;

  /// Wire time for one tuple of `bytes` bytes on the uplink, in ms.
  double WireTimeMs(int bytes) const {
    return (static_cast<double>(bytes) * 8.0) /
           (nic_bandwidth_mbps * 1000.0);  // Mbps -> bits per ms.
  }
};

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_CLUSTER_H_
