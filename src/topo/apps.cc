#include "topo/apps.h"

#include <functional>
#include <utility>

#include "common/logging.h"

namespace drlstream::topo {

const char* ScaleToString(Scale scale) {
  switch (scale) {
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kLarge:
      return "large";
  }
  return "?";
}

void SinkCollector::Record(const std::string& collection,
                           const std::string& key, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  collections_[collection][key] += delta;
  ++total_;
}

int64_t SinkCollector::Get(const std::string& collection,
                           const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return 0;
  auto kit = cit->second.find(key);
  return kit == cit->second.end() ? 0 : kit->second;
}

int64_t SinkCollector::TotalRecords() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::map<std::string, int64_t> SinkCollector::Snapshot(
    const std::string& collection) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return {};
  return cit->second;
}

namespace {

uint64_t HashString(const std::string& s) {
  return std::hash<std::string>{}(s);
}

// ---------------------------------------------------------------------------
// Continuous queries UDFs.
// ---------------------------------------------------------------------------

class QuerySource : public SpoutSource {
 public:
  TupleData Next(Rng* rng) override {
    const SpeedQuery query = MakeRandomQuery(rng);
    TupleData tuple;
    tuple.text = SerializeQuery(query);
    tuple.key = HashString(tuple.text);
    return tuple;
  }
};

class QueryBolt : public Udf {
 public:
  explicit QueryBolt(std::shared_ptr<const std::vector<VehicleRecord>> table)
      : table_(std::move(table)) {}

  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    const SpeedQuery query = ParseQuery(input.text);
    int matches = 0;
    for (const VehicleRecord& rec : *table_) {
      if (rec.speed_mph <= query.speed_threshold) continue;
      if (!query.plate_prefix.empty() &&
          rec.plate.rfind(query.plate_prefix, 0) != 0) {
        continue;
      }
      TupleData match;
      match.text = rec.plate + "," + rec.owner + "," + rec.ssn;
      match.key = HashString(rec.plate);
      out->push_back(std::move(match));
      if (++matches >= kMaxMatches) break;
    }
  }

 private:
  static constexpr int kMaxMatches = 3;
  std::shared_ptr<const std::vector<VehicleRecord>> table_;
};

class FileBolt : public Udf {
 public:
  explicit FileBolt(std::shared_ptr<SinkCollector> sink)
      : sink_(std::move(sink)) {}

  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    (void)out;  // Terminal bolt.
    if (sink_) sink_->Record("output_file", input.text, 1);
  }

 private:
  std::shared_ptr<SinkCollector> sink_;
};

// ---------------------------------------------------------------------------
// Log stream processing UDFs.
// ---------------------------------------------------------------------------

class LogSource : public SpoutSource {
 public:
  TupleData Next(Rng* rng) override {
    TupleData tuple;
    tuple.text = MakeLogLine(rng);
    tuple.key = HashString(tuple.text);
    return tuple;
  }
};

class LogRulesBolt : public Udf {
 public:
  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    LogEntry entry;
    if (!ParseLogLine(input.text, &entry)) return;  // Drop malformed lines.
    TupleData parsed;
    parsed.text = entry.method + " " + entry.uri + " " +
                  std::to_string(entry.status) +
                  (entry.is_error ? " ERROR" : " OK");
    parsed.key = HashString(entry.uri);
    parsed.number = entry.bytes;
    out->push_back(std::move(parsed));
  }
};

class IndexerBolt : public Udf {
 public:
  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    // Index the entry under its URI token (second field).
    const size_t first_space = input.text.find(' ');
    const size_t second_space = input.text.find(' ', first_space + 1);
    std::string uri = input.text.substr(
        first_space + 1, second_space - first_space - 1);
    ++index_[uri];
    TupleData record;
    record.text = "idx:" + uri;
    record.key = input.key;
    record.number = index_[uri];
    out->push_back(std::move(record));
  }

 private:
  std::map<std::string, int64_t> index_;
};

class CounterBolt : public Udf {
 public:
  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    // Count per status code (third field).
    const size_t last_space = input.text.rfind(' ');
    const size_t status_begin = input.text.rfind(' ', last_space - 1) + 1;
    std::string status =
        input.text.substr(status_begin, last_space - status_begin);
    ++counts_[status];
    TupleData record;
    record.text = "cnt:" + status;
    record.key = HashString(status);
    record.number = counts_[status];
    out->push_back(std::move(record));
  }

 private:
  std::map<std::string, int64_t> counts_;
};

class DatabaseBolt : public Udf {
 public:
  DatabaseBolt(std::shared_ptr<SinkCollector> sink, std::string collection)
      : sink_(std::move(sink)), collection_(std::move(collection)) {}

  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    (void)out;  // Terminal bolt.
    if (sink_) sink_->Record(collection_, input.text, 1);
  }

 private:
  std::shared_ptr<SinkCollector> sink_;
  std::string collection_;
};

// ---------------------------------------------------------------------------
// Word count UDFs.
// ---------------------------------------------------------------------------

class LineSource : public SpoutSource {
 public:
  TupleData Next(Rng* rng) override {
    (void)rng;
    const std::vector<std::string>& lines = AliceLines();
    TupleData tuple;
    tuple.text = lines[next_ % lines.size()];
    tuple.key = next_;
    ++next_;
    return tuple;
  }

 private:
  uint64_t next_ = 0;
};

class SplitSentenceBolt : public Udf {
 public:
  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    for (std::string& word : SplitWords(input.text)) {
      TupleData tuple;
      tuple.key = HashString(word);
      tuple.text = std::move(word);
      out->push_back(std::move(tuple));
    }
  }
};

class WordCountBolt : public Udf {
 public:
  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    const int64_t count = ++counts_[input.text];
    TupleData tuple;
    tuple.key = input.key;
    tuple.text = input.text;
    tuple.number = count;
    out->push_back(std::move(tuple));
  }

 private:
  std::map<std::string, int64_t> counts_;
};

class WordDatabaseBolt : public Udf {
 public:
  explicit WordDatabaseBolt(std::shared_ptr<SinkCollector> sink)
      : sink_(std::move(sink)) {}

  void Process(const TupleData& input, std::vector<TupleData>* out) override {
    (void)out;  // Terminal bolt.
    // Stores the latest running count (overwrite semantics like the paper's
    // Mongo collection): recorded as "count seen so far" per word.
    if (sink_) sink_->Record("word_counts", input.text, 1);
  }

 private:
  std::shared_ptr<SinkCollector> sink_;
};

std::shared_ptr<SinkCollector> ResolveSink(const AppOptions& options) {
  if (options.sink) return options.sink;
  return std::make_shared<SinkCollector>();
}

}  // namespace

App BuildContinuousQueries(Scale scale, const AppOptions& options) {
  // Executor counts follow the paper; per-executor spout rates are chosen
  // so the total workload grows with scale (heavier load at larger scale,
  // as in the paper's evaluation) while the cluster stays un-overloaded
  // under a spread-out deployment.
  int spouts = 0, queries = 0, files = 0;
  double rate_per_executor = 0.0;
  switch (scale) {
    case Scale::kSmall:
      spouts = 2;
      queries = 9;
      files = 9;
      rate_per_executor = 900.0;
      break;
    case Scale::kMedium:
      spouts = 5;
      queries = 25;
      files = 20;
      rate_per_executor = 900.0;
      break;
    case Scale::kLarge:
      spouts = 10;
      queries = 45;
      files = 45;
      rate_per_executor = 850.0;
      break;
  }

  App app{Topology("continuous_queries_" +
                   std::string(ScaleToString(scale))),
          Workload(), nullptr};

  Component spout;
  spout.name = "spout";
  spout.parallelism = spouts;
  spout.service_mean_ms = 0.03;
  spout.service_cv = 0.3;
  spout.emit_factor = 1.0;
  spout.tuple_bytes = 48;

  Component query;
  query.name = "query";
  query.parallelism = queries;
  query.service_mean_ms = 1.00;
  query.service_cv = 0.5;
  query.emit_factor = 0.8;  // Not every query matches a record.
  query.tuple_bytes = 96;

  Component file;
  file.name = "file";
  file.parallelism = files;
  file.service_mean_ms = 0.30;
  file.service_cv = 0.5;
  file.emit_factor = 0.0;
  file.tuple_bytes = 64;

  if (options.functional) {
    app.sink = ResolveSink(options);
    Rng table_rng(options.seed);
    auto table = std::make_shared<const std::vector<VehicleRecord>>(
        MakeVehicleTable(options.table_rows, &table_rng));
    spout.source_factory = [] { return std::make_unique<QuerySource>(); };
    query.udf_factory = [table] { return std::make_unique<QueryBolt>(table); };
    auto sink = app.sink;
    file.udf_factory = [sink] { return std::make_unique<FileBolt>(sink); };
  }

  const int spout_id = app.topology.AddSpout(std::move(spout));
  const int query_id = app.topology.AddBolt(std::move(query));
  const int file_id = app.topology.AddBolt(std::move(file));
  DRLSTREAM_CHECK(
      app.topology.Connect(spout_id, query_id, Grouping::kShuffle).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(query_id, file_id, Grouping::kShuffle).ok());

  app.workload.SetBaseRate(spout_id, rate_per_executor * options.rate_scale);
  return app;
}

App BuildLogProcessing(const AppOptions& options) {
  App app{Topology("log_stream_processing"), Workload(), nullptr};

  Component spout;
  spout.name = "spout";
  spout.parallelism = 10;
  spout.service_mean_ms = 0.02;
  spout.service_cv = 0.3;
  spout.emit_factor = 1.0;
  spout.tuple_bytes = 180;

  Component rules;
  rules.name = "log_rules";
  rules.parallelism = 20;
  rules.service_mean_ms = 1.20;
  rules.service_cv = 0.6;
  rules.emit_factor = 1.0;
  rules.tuple_bytes = 96;

  Component indexer;
  indexer.name = "indexer";
  indexer.parallelism = 20;
  indexer.service_mean_ms = 1.40;
  indexer.service_cv = 0.6;
  indexer.emit_factor = 1.0;
  indexer.tuple_bytes = 72;

  Component counter;
  counter.name = "counter";
  counter.parallelism = 20;
  counter.service_mean_ms = 1.00;
  counter.service_cv = 0.6;
  counter.emit_factor = 1.0;
  counter.tuple_bytes = 48;

  Component db_index;
  db_index.name = "db_index";
  db_index.parallelism = 15;
  db_index.service_mean_ms = 1.20;
  db_index.service_cv = 0.5;
  db_index.emit_factor = 0.0;
  db_index.tuple_bytes = 72;

  Component db_count;
  db_count.name = "db_count";
  db_count.parallelism = 15;
  db_count.service_mean_ms = 1.20;
  db_count.service_cv = 0.5;
  db_count.emit_factor = 0.0;
  db_count.tuple_bytes = 48;

  if (options.functional) {
    app.sink = ResolveSink(options);
    auto sink = app.sink;
    spout.source_factory = [] { return std::make_unique<LogSource>(); };
    rules.udf_factory = [] { return std::make_unique<LogRulesBolt>(); };
    indexer.udf_factory = [] { return std::make_unique<IndexerBolt>(); };
    counter.udf_factory = [] { return std::make_unique<CounterBolt>(); };
    db_index.udf_factory = [sink] {
      return std::make_unique<DatabaseBolt>(sink, "index_records");
    };
    db_count.udf_factory = [sink] {
      return std::make_unique<DatabaseBolt>(sink, "count_records");
    };
  }

  const int spout_id = app.topology.AddSpout(std::move(spout));
  const int rules_id = app.topology.AddBolt(std::move(rules));
  const int indexer_id = app.topology.AddBolt(std::move(indexer));
  const int counter_id = app.topology.AddBolt(std::move(counter));
  const int db_index_id = app.topology.AddBolt(std::move(db_index));
  const int db_count_id = app.topology.AddBolt(std::move(db_count));

  DRLSTREAM_CHECK(
      app.topology.Connect(spout_id, rules_id, Grouping::kShuffle).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(rules_id, indexer_id, Grouping::kFields).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(rules_id, counter_id, Grouping::kFields).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(indexer_id, db_index_id, Grouping::kShuffle).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(counter_id, db_count_id, Grouping::kShuffle).ok());

  app.workload.SetBaseRate(spout_id, 200.0 * options.rate_scale);
  return app;
}

App BuildWordCount(const AppOptions& options) {
  App app{Topology("word_count_stream"), Workload(), nullptr};

  Component spout;
  spout.name = "spout";
  spout.parallelism = 10;
  spout.service_mean_ms = 0.02;
  spout.service_cv = 0.3;
  spout.emit_factor = 1.0;
  spout.tuple_bytes = 64;

  Component split;
  split.name = "split_sentence";
  split.parallelism = 30;
  split.service_mean_ms = 0.20;
  split.service_cv = 0.5;
  split.emit_factor = 10.5;  // Average words per line of the input text.
  split.tuple_bytes = 16;

  Component count;
  count.name = "word_count";
  count.parallelism = 30;
  count.service_mean_ms = 0.08;
  count.service_cv = 0.5;
  count.emit_factor = 1.0;
  count.tuple_bytes = 24;

  Component db;
  db.name = "database";
  db.parallelism = 30;
  db.service_mean_ms = 0.14;
  db.service_cv = 0.4;
  db.emit_factor = 0.0;
  db.tuple_bytes = 24;

  if (options.functional) {
    app.sink = ResolveSink(options);
    auto sink = app.sink;
    spout.source_factory = [] { return std::make_unique<LineSource>(); };
    split.udf_factory = [] { return std::make_unique<SplitSentenceBolt>(); };
    count.udf_factory = [] { return std::make_unique<WordCountBolt>(); };
    db.udf_factory = [sink] {
      return std::make_unique<WordDatabaseBolt>(sink);
    };
  }

  const int spout_id = app.topology.AddSpout(std::move(spout));
  const int split_id = app.topology.AddBolt(std::move(split));
  const int count_id = app.topology.AddBolt(std::move(count));
  const int db_id = app.topology.AddBolt(std::move(db));

  DRLSTREAM_CHECK(
      app.topology.Connect(spout_id, split_id, Grouping::kShuffle).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(split_id, count_id, Grouping::kFields).ok());
  DRLSTREAM_CHECK(
      app.topology.Connect(count_id, db_id, Grouping::kShuffle).ok());

  app.workload.SetBaseRate(spout_id, 300.0 * options.rate_scale);
  return app;
}

}  // namespace drlstream::topo
