#include "topo/datasets.h"

#include <cctype>
#include <sstream>

namespace drlstream::topo {
namespace {

const char* const kFirstNames[] = {"Alice", "Bob",   "Carol", "David",
                                   "Erin",  "Frank", "Grace", "Heidi",
                                   "Ivan",  "Judy",  "Mallory", "Niaj"};
const char* const kLastNames[] = {"Smith",  "Jones",  "Brown", "Taylor",
                                  "Wilson", "Davis",  "Clark", "Lewis",
                                  "Walker", "Wright", "Young", "King"};
const char* const kUris[] = {"/index.html",  "/login",      "/api/v1/items",
                             "/api/v1/user", "/static/app.js", "/favicon.ico",
                             "/search",      "/checkout",   "/admin",
                             "/img/logo.png"};
const char* const kMethods[] = {"GET", "GET", "GET", "GET", "POST", "POST",
                                "PUT", "DELETE"};

std::string RandomPlate(Rng* rng) {
  std::string plate;
  for (int i = 0; i < 3; ++i) {
    plate += static_cast<char>('A' + rng->UniformInt(0, 25));
  }
  plate += '-';
  for (int i = 0; i < 4; ++i) {
    plate += static_cast<char>('0' + rng->UniformInt(0, 9));
  }
  return plate;
}

std::string RandomSsn(Rng* rng) {
  std::ostringstream ss;
  ss << rng->UniformInt(100, 999) << '-' << rng->UniformInt(10, 99) << '-'
     << rng->UniformInt(1000, 9999);
  return ss.str();
}

}  // namespace

std::vector<VehicleRecord> MakeVehicleTable(int num_rows, Rng* rng) {
  std::vector<VehicleRecord> table;
  table.reserve(num_rows);
  for (int i = 0; i < num_rows; ++i) {
    VehicleRecord rec;
    rec.plate = RandomPlate(rng);
    rec.owner = std::string(kFirstNames[rng->UniformInt(0, 11)]) + " " +
                kLastNames[rng->UniformInt(0, 11)];
    rec.ssn = RandomSsn(rng);
    rec.speed_mph = rng->UniformInt(35, 95);
    table.push_back(std::move(rec));
  }
  return table;
}

SpeedQuery MakeRandomQuery(Rng* rng) {
  SpeedQuery q;
  q.speed_threshold = rng->UniformInt(60, 90);
  // One query in four restricts the plate's first letter as well.
  if (rng->Bernoulli(0.25)) {
    q.plate_prefix = std::string(1, static_cast<char>('A' + rng->UniformInt(0, 25)));
  }
  return q;
}

std::string SerializeQuery(const SpeedQuery& query) {
  return std::to_string(query.speed_threshold) + "|" + query.plate_prefix;
}

SpeedQuery ParseQuery(const std::string& text) {
  SpeedQuery q;
  const size_t bar = text.find('|');
  if (bar == std::string::npos) {
    q.speed_threshold = std::atoi(text.c_str());
    return q;
  }
  q.speed_threshold = std::atoi(text.substr(0, bar).c_str());
  q.plate_prefix = text.substr(bar + 1);
  return q;
}

std::string MakeLogLine(Rng* rng) {
  std::ostringstream ss;
  // Status distribution: mostly 200s, some 3xx/4xx/5xx.
  int status = 200;
  const double roll = rng->Uniform(0.0, 1.0);
  if (roll > 0.97) {
    status = 500;
  } else if (roll > 0.92) {
    status = 404;
  } else if (roll > 0.85) {
    status = 302;
  }
  ss << "2017-11-" << rng->UniformInt(10, 28) << ' ' << rng->UniformInt(10, 23)
     << ':' << rng->UniformInt(10, 59) << ':' << rng->UniformInt(10, 59) << ' '
     << "10." << rng->UniformInt(0, 255) << '.' << rng->UniformInt(0, 255)
     << '.' << rng->UniformInt(1, 254) << ' '
     << kMethods[rng->UniformInt(0, 7)] << ' ' << kUris[rng->UniformInt(0, 9)]
     << "?r=" << rng->UniformInt(0, 499) << ' ' << status << ' '
     << rng->UniformInt(200, 40000) << ' ' << rng->UniformInt(1, 900);
  return ss.str();
}

bool ParseLogLine(const std::string& line, LogEntry* entry) {
  std::istringstream ss(line);
  std::string date, time, ip;
  int time_taken = 0;
  if (!(ss >> date >> time >> ip >> entry->method >> entry->uri >>
        entry->status >> entry->bytes >> time_taken)) {
    return false;
  }
  entry->is_error = entry->status >= 400;
  return true;
}

const std::vector<std::string>& AliceLines() {
  // Opening of "Alice's Adventures in Wonderland" (public domain), the input
  // file used by the paper's word-count topology.
  static const std::vector<std::string>* const kLines =
      new std::vector<std::string>{
          "Alice was beginning to get very tired of sitting by her sister",
          "on the bank and of having nothing to do once or twice she had",
          "peeped into the book her sister was reading but it had no",
          "pictures or conversations in it and what is the use of a book",
          "thought Alice without pictures or conversations",
          "So she was considering in her own mind as well as she could",
          "for the hot day made her feel very sleepy and stupid whether",
          "the pleasure of making a daisy chain would be worth the trouble",
          "of getting up and picking the daisies when suddenly a White",
          "Rabbit with pink eyes ran close by her",
          "There was nothing so very remarkable in that nor did Alice",
          "think it so very much out of the way to hear the Rabbit say to",
          "itself Oh dear Oh dear I shall be late when she thought it over",
          "afterwards it occurred to her that she ought to have wondered",
          "at this but at the time it all seemed quite natural but when",
          "the Rabbit actually took a watch out of its waistcoat pocket",
          "and looked at it and then hurried on Alice started to her feet",
          "for it flashed across her mind that she had never before seen",
          "a rabbit with either a waistcoat pocket or a watch to take out",
          "of it and burning with curiosity she ran across the field",
          "after it and fortunately was just in time to see it pop down",
          "a large rabbit hole under the hedge",
          "In another moment down went Alice after it never once",
          "considering how in the world she was to get out again",
          "The rabbit hole went straight on like a tunnel for some way",
          "and then dipped suddenly down so suddenly that Alice had not a",
          "moment to think about stopping herself before she found",
          "herself falling down a very deep well",
          "Either the well was very deep or she fell very slowly for she",
          "had plenty of time as she went down to look about her and to",
          "wonder what was going to happen next",
      };
  return *kLines;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::string current;
  for (char c : line) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(current);
  return words;
}

}  // namespace drlstream::topo
