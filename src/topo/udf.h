#ifndef DRLSTREAM_TOPO_UDF_H_
#define DRLSTREAM_TOPO_UDF_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "topo/tuple.h"

namespace drlstream::topo {

/// User-defined bolt logic for functional-mode simulation. Each executor
/// owns one instance (so stateful bolts like WordCount keep per-executor
/// state, exactly as Storm tasks do).
class Udf {
 public:
  virtual ~Udf() = default;

  /// Processes one input tuple, appending zero or more output tuples to
  /// `out`. The same outputs are sent on every outgoing stream edge (Storm
  /// bolts emit to all subscribed streams unless they use direct streams).
  virtual void Process(const TupleData& input,
                       std::vector<TupleData>* out) = 0;
};

/// Data source logic for functional mode: produces the next tuple a spout
/// executor emits (a query, a log line, a text line, ...).
class SpoutSource {
 public:
  virtual ~SpoutSource() = default;
  virtual TupleData Next(Rng* rng) = 0;
};

/// Creates a fresh per-executor UDF instance. Null factory = timing-only
/// component (children counts drawn from the component's emit distribution).
using UdfFactory = std::function<std::unique_ptr<Udf>()>;
using SpoutSourceFactory = std::function<std::unique_ptr<SpoutSource>()>;

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_UDF_H_
