#ifndef DRLSTREAM_TOPO_WORKLOAD_H_
#define DRLSTREAM_TOPO_WORKLOAD_H_

#include <map>
#include <vector>

#include "common/status.h"

namespace drlstream::topo {

/// A scheduled multiplicative change to the incoming workload, e.g. the
/// paper's Fig. 12 increases all rates by 50% at t = 20 min.
struct RateChange {
  double time_ms = 0.0;
  /// Multiplier applied to the base rate from `time_ms` on (not compounded
  /// with other changes; the factor in effect is that of the latest change
  /// at or before the query time).
  double factor = 1.0;
};

/// Per-spout-component tuple arrival rates over time. Rates are expressed
/// per *executor* of the spout component in tuples per second; arrivals are
/// Poisson. The rate vector (per component) is the `w` part of the paper's
/// state s = (X, w).
class Workload {
 public:
  Workload() = default;

  /// Sets the base rate for a spout component (tuples/second per executor).
  void SetBaseRate(int spout_component, double tuples_per_sec);

  /// Adds a workload change applying to all spouts.
  void AddRateChange(RateChange change);

  /// Rate of one executor of `spout_component` at simulation time `time_ms`.
  double RateAt(int spout_component, double time_ms) const;

  /// Multiplicative factor in effect at `time_ms`.
  double FactorAt(double time_ms) const;

  /// Time of the first rate change strictly after `time_ms`, or +infinity
  /// when none is scheduled (used by the simulator to re-sample spout
  /// inter-arrival times at rate boundaries).
  double NextChangeAfterMs(double time_ms) const;

  /// Rates for the given spout components at `time_ms`, in order — the
  /// workload part of the DRL state.
  std::vector<double> RatesVector(const std::vector<int>& spout_components,
                                  double time_ms) const;

  /// Scales all base rates by `factor` (used to shrink experiments for fast
  /// training runs while preserving relative load).
  void ScaleAllRates(double factor);

  bool HasRateFor(int spout_component) const {
    return base_rates_.count(spout_component) > 0;
  }

 private:
  std::map<int, double> base_rates_;
  std::vector<RateChange> changes_;  // sorted by time
};

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_WORKLOAD_H_
