#ifndef DRLSTREAM_TOPO_TOPOLOGY_H_
#define DRLSTREAM_TOPO_TOPOLOGY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "topo/udf.h"

namespace drlstream::topo {

/// How tuples are distributed among the tasks of a downstream component
/// (Storm grouping policies, Section 2.1 of the paper).
enum class Grouping {
  kShuffle = 0,  // random
  kFields = 1,   // by key hash
  kAll = 2,      // one-to-all (broadcast)
  kGlobal = 3,   // all-to-one (lowest-id task)
};

const char* GroupingToString(Grouping g);

/// A spout or bolt (the paper's "data source" / "Processing Unit").
struct Component {
  std::string name;
  bool is_spout = false;
  /// Number of executors (parallel tasks) this component runs as.
  int parallelism = 1;
  /// Mean per-tuple processing time at one executor, in ms (uncontended).
  double service_mean_ms = 0.1;
  /// Coefficient of variation of the (log-normal) service time.
  double service_cv = 0.5;
  /// Timing-only mode: expected number of output tuples a *bolt* emits per
  /// input tuple on each outgoing edge (Poisson-distributed). Spouts always
  /// emit exactly one tuple per edge per emission. Functional mode uses the
  /// UDF's real output instead.
  double emit_factor = 1.0;
  /// Average serialized tuple size emitted by this component, in bytes
  /// (timing-only mode; functional mode sizes the real payloads).
  int tuple_bytes = 128;
  /// Optional functional logic.
  UdfFactory udf_factory;          // bolts
  SpoutSourceFactory source_factory;  // spouts
};

/// A directed stream between two components.
struct StreamEdge {
  int from = -1;
  int to = -1;
  Grouping grouping = Grouping::kShuffle;
};

/// The logical application graph (a Storm topology): components, their
/// parallelism, and how streams are grouped between them. Executors are
/// numbered globally and contiguously per component, in insertion order.
class Topology {
 public:
  explicit Topology(std::string name) : name_(std::move(name)) {}

  /// Adds a component; returns its component id.
  int AddSpout(Component component);
  int AddBolt(Component component);

  /// Adds a stream edge between two existing components.
  Status Connect(int from, int to, Grouping grouping);

  /// Checks structural validity: at least one spout, edges in range, spouts
  /// have no inbound edges, every bolt reachable from some spout, acyclic.
  Status Validate() const;

  const std::string& name() const { return name_; }
  int num_components() const { return static_cast<int>(components_.size()); }
  const Component& component(int id) const { return components_[id]; }
  Component& mutable_component(int id) { return components_[id]; }
  const std::vector<StreamEdge>& edges() const { return edges_; }

  /// Total number of executors (the paper's N).
  int num_executors() const { return num_executors_; }
  /// Component owning the given global executor index.
  int ComponentOfExecutor(int executor) const;
  /// Global executor index of the first task of `component`.
  int FirstExecutorOf(int component) const { return first_executor_[component]; }
  /// Global executor indices [first, first + parallelism) of `component`.
  std::vector<int> ExecutorsOf(int component) const;

  /// Outgoing/incoming edges of a component (indices into edges()).
  const std::vector<int>& OutEdges(int component) const {
    return out_edges_[component];
  }
  const std::vector<int>& InEdges(int component) const {
    return in_edges_[component];
  }

  /// Component ids of all spouts, in insertion order.
  std::vector<int> SpoutComponents() const;
  int num_spouts() const;

  /// True if any component carries functional logic.
  bool HasFunctionalComponents() const;

 private:
  int AddComponent(Component component, bool is_spout);

  std::string name_;
  std::vector<Component> components_;
  std::vector<StreamEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<std::vector<int>> in_edges_;
  std::vector<int> first_executor_;
  std::vector<int> executor_component_;  // executor -> component
  int num_executors_ = 0;
};

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_TOPOLOGY_H_
