#include "topo/workload.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace drlstream::topo {

void Workload::SetBaseRate(int spout_component, double tuples_per_sec) {
  DRLSTREAM_CHECK_GE(tuples_per_sec, 0.0);
  base_rates_[spout_component] = tuples_per_sec;
}

void Workload::AddRateChange(RateChange change) {
  DRLSTREAM_CHECK_GE(change.time_ms, 0.0);
  DRLSTREAM_CHECK_GT(change.factor, 0.0);
  changes_.push_back(change);
  std::sort(changes_.begin(), changes_.end(),
            [](const RateChange& a, const RateChange& b) {
              return a.time_ms < b.time_ms;
            });
}

double Workload::FactorAt(double time_ms) const {
  double factor = 1.0;
  for (const RateChange& c : changes_) {
    if (c.time_ms <= time_ms) {
      factor = c.factor;
    } else {
      break;
    }
  }
  return factor;
}

double Workload::NextChangeAfterMs(double time_ms) const {
  for (const RateChange& c : changes_) {
    if (c.time_ms > time_ms) return c.time_ms;
  }
  return std::numeric_limits<double>::infinity();
}

double Workload::RateAt(int spout_component, double time_ms) const {
  auto it = base_rates_.find(spout_component);
  if (it == base_rates_.end()) return 0.0;
  return it->second * FactorAt(time_ms);
}

std::vector<double> Workload::RatesVector(
    const std::vector<int>& spout_components, double time_ms) const {
  std::vector<double> out;
  out.reserve(spout_components.size());
  for (int c : spout_components) out.push_back(RateAt(c, time_ms));
  return out;
}

void Workload::ScaleAllRates(double factor) {
  DRLSTREAM_CHECK_GT(factor, 0.0);
  for (auto& [component, rate] : base_rates_) rate *= factor;
}

}  // namespace drlstream::topo
