#ifndef DRLSTREAM_TOPO_TUPLE_H_
#define DRLSTREAM_TOPO_TUPLE_H_

#include <cstdint>
#include <string>

namespace drlstream::topo {

/// The value carried by a tuple in functional mode. Timing-only simulations
/// leave it empty. `key` drives fields grouping; `text`/`number` carry the
/// application payload (a query, a log line, a word, a count, ...).
struct TupleData {
  uint64_t key = 0;
  std::string text;
  int64_t number = 0;

  /// Approximate serialized size in bytes, used for wire-time modeling.
  int SerializedBytes() const {
    return static_cast<int>(sizeof(key) + sizeof(number) + text.size());
  }
};

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_TUPLE_H_
