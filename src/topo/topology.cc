#include "topo/topology.h"

#include <queue>

#include "common/logging.h"

namespace drlstream::topo {

const char* GroupingToString(Grouping g) {
  switch (g) {
    case Grouping::kShuffle:
      return "shuffle";
    case Grouping::kFields:
      return "fields";
    case Grouping::kAll:
      return "all";
    case Grouping::kGlobal:
      return "global";
  }
  return "?";
}

int Topology::AddComponent(Component component, bool is_spout) {
  DRLSTREAM_CHECK_GT(component.parallelism, 0);
  DRLSTREAM_CHECK_GT(component.service_mean_ms, 0.0);
  component.is_spout = is_spout;
  const int id = static_cast<int>(components_.size());
  first_executor_.push_back(num_executors_);
  for (int i = 0; i < component.parallelism; ++i) {
    executor_component_.push_back(id);
  }
  num_executors_ += component.parallelism;
  components_.push_back(std::move(component));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

int Topology::AddSpout(Component component) {
  return AddComponent(std::move(component), /*is_spout=*/true);
}

int Topology::AddBolt(Component component) {
  return AddComponent(std::move(component), /*is_spout=*/false);
}

Status Topology::Connect(int from, int to, Grouping grouping) {
  if (from < 0 || from >= num_components() || to < 0 ||
      to >= num_components()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  if (components_[to].is_spout) {
    return Status::InvalidArgument("spouts cannot receive streams");
  }
  const int edge_id = static_cast<int>(edges_.size());
  edges_.push_back(StreamEdge{from, to, grouping});
  out_edges_[from].push_back(edge_id);
  in_edges_[to].push_back(edge_id);
  return Status::OK();
}

Status Topology::Validate() const {
  if (components_.empty()) {
    return Status::FailedPrecondition("topology has no components");
  }
  bool has_spout = false;
  for (const Component& c : components_) {
    if (c.is_spout) has_spout = true;
  }
  if (!has_spout) return Status::FailedPrecondition("topology has no spout");

  // Reachability from spouts.
  std::vector<bool> reachable(components_.size(), false);
  std::queue<int> frontier;
  for (int c = 0; c < num_components(); ++c) {
    if (components_[c].is_spout) {
      reachable[c] = true;
      frontier.push(c);
    }
  }
  while (!frontier.empty()) {
    const int c = frontier.front();
    frontier.pop();
    for (int e : out_edges_[c]) {
      const int to = edges_[e].to;
      if (!reachable[to]) {
        reachable[to] = true;
        frontier.push(to);
      }
    }
  }
  for (int c = 0; c < num_components(); ++c) {
    if (!reachable[c]) {
      return Status::FailedPrecondition("component '" + components_[c].name +
                                        "' unreachable from any spout");
    }
  }

  // Acyclicity via Kahn's algorithm.
  std::vector<int> in_degree(components_.size(), 0);
  for (const StreamEdge& e : edges_) ++in_degree[e.to];
  std::queue<int> ready;
  for (int c = 0; c < num_components(); ++c) {
    if (in_degree[c] == 0) ready.push(c);
  }
  int visited = 0;
  while (!ready.empty()) {
    const int c = ready.front();
    ready.pop();
    ++visited;
    for (int e : out_edges_[c]) {
      if (--in_degree[edges_[e].to] == 0) ready.push(edges_[e].to);
    }
  }
  if (visited != num_components()) {
    return Status::FailedPrecondition("topology graph contains a cycle");
  }
  return Status::OK();
}

int Topology::ComponentOfExecutor(int executor) const {
  DRLSTREAM_CHECK(executor >= 0 && executor < num_executors_);
  return executor_component_[executor];
}

std::vector<int> Topology::ExecutorsOf(int component) const {
  DRLSTREAM_CHECK(component >= 0 && component < num_components());
  std::vector<int> out;
  const int first = first_executor_[component];
  for (int i = 0; i < components_[component].parallelism; ++i) {
    out.push_back(first + i);
  }
  return out;
}

std::vector<int> Topology::SpoutComponents() const {
  std::vector<int> out;
  for (int c = 0; c < num_components(); ++c) {
    if (components_[c].is_spout) out.push_back(c);
  }
  return out;
}

int Topology::num_spouts() const {
  return static_cast<int>(SpoutComponents().size());
}

bool Topology::HasFunctionalComponents() const {
  for (const Component& c : components_) {
    if (c.udf_factory || c.source_factory) return true;
  }
  return false;
}

}  // namespace drlstream::topo
