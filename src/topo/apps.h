#ifndef DRLSTREAM_TOPO_APPS_H_
#define DRLSTREAM_TOPO_APPS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topo/datasets.h"
#include "topo/topology.h"
#include "topo/workload.h"

namespace drlstream::topo {

/// Experiment scales for the continuous-queries topology (paper Section 4.1):
/// small = 20 executors (2 spout / 9 query / 9 file),
/// medium = 50 (5 / 25 / 20), large = 100 (10 / 45 / 45).
enum class Scale { kSmall, kMedium, kLarge };

const char* ScaleToString(Scale scale);

/// Shared sink for functional-mode terminal bolts (the "output file" /
/// "Mongo database" of the paper's applications). Thread-compatible: the
/// simulator is single-threaded, but a mutex keeps examples safe too.
class SinkCollector {
 public:
  void Record(const std::string& collection, const std::string& key,
              int64_t delta);
  int64_t Get(const std::string& collection, const std::string& key) const;
  int64_t TotalRecords() const;
  std::map<std::string, int64_t> Snapshot(const std::string& collection) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::map<std::string, int64_t>> collections_;
  int64_t total_ = 0;
};

/// Options shared by the application builders.
struct AppOptions {
  /// Attach real UDFs (queries actually scan the table, words are actually
  /// counted). Timing-only mode draws fan-outs from emit distributions.
  bool functional = false;
  /// Multiplies every spout rate; <1 shrinks experiments for fast training.
  double rate_scale = 1.0;
  /// Rows in the continuous-queries in-memory vehicle table.
  int table_rows = 500;
  /// Seed for dataset generation (vehicle table contents).
  uint64_t seed = 42;
  /// Sink for functional terminal bolts; if null and functional is set, a
  /// process-lifetime collector shared by all built apps is used.
  std::shared_ptr<SinkCollector> sink;
};

/// A built application: the topology plus its nominal workload.
struct App {
  Topology topology;
  Workload workload;
  std::shared_ptr<SinkCollector> sink;  // set in functional mode
};

/// Continuous queries (Fig. 3): Spout -> Query bolt (scans an in-memory
/// vehicle table) -> File bolt.
App BuildContinuousQueries(Scale scale, const AppOptions& options = {});

/// Log stream processing (Fig. 4): Spout -> LogRules -> {Indexer -> Db,
/// Counter -> Db}. Always the paper's large configuration (100 executors).
App BuildLogProcessing(const AppOptions& options = {});

/// Word count, stream version (Fig. 5): Spout -> SplitSentence ->
/// WordCount (fields grouping on the word) -> Db. 100 executors.
App BuildWordCount(const AppOptions& options = {});

}  // namespace drlstream::topo

#endif  // DRLSTREAM_TOPO_APPS_H_
