#include "topo/cluster.h"

namespace drlstream::topo {

std::vector<uint8_t> UpMask(const std::vector<MachineHealth>& healths) {
  std::vector<uint8_t> mask(healths.size(), 1);
  for (size_t i = 0; i < healths.size(); ++i) {
    mask[i] = healths[i].up ? 1 : 0;
  }
  return mask;
}

int AliveCount(const std::vector<uint8_t>& up_mask) {
  int alive = 0;
  for (uint8_t up : up_mask) alive += up ? 1 : 0;
  return alive;
}

void AliveMachineList(const std::vector<uint8_t>& up_mask, int num_machines,
                      std::vector<int>* out) {
  out->clear();
  for (int m = 0; m < num_machines; ++m) {
    if (up_mask.empty() || up_mask[m]) out->push_back(m);
  }
}

Status ClusterConfig::Validate() const {
  if (num_machines <= 0) {
    return Status::InvalidArgument("num_machines must be positive");
  }
  if (slots_per_machine <= 0) {
    return Status::InvalidArgument("slots_per_machine must be positive");
  }
  if (cores_per_machine <= 0) {
    return Status::InvalidArgument("cores_per_machine must be positive");
  }
  if (local_hop_ms < 0 || remote_base_ms < 0 || nic_per_tuple_ms < 0 ||
      interprocess_hop_ms < 0) {
    return Status::InvalidArgument("hop delays must be non-negative");
  }
  if (nic_bandwidth_mbps <= 0) {
    return Status::InvalidArgument("nic_bandwidth_mbps must be positive");
  }
  if (migration_pause_ms < 0) {
    return Status::InvalidArgument("migration_pause_ms must be non-negative");
  }
  if (ack_timeout_ms <= 0) {
    return Status::InvalidArgument("ack_timeout_ms must be positive");
  }
  if (machine.active_watts < 0 || machine.idle_watts < 0 ||
      machine.sleep_watts < 0) {
    return Status::InvalidArgument("machine wattages must be non-negative");
  }
  if (machine.wake_ms < 0) {
    return Status::InvalidArgument("machine.wake_ms must be non-negative");
  }
  return Status::OK();
}

}  // namespace drlstream::topo
