#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace drlstream {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace drlstream
