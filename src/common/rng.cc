#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace drlstream {

// MT19937-64 constants from the standard's mersenne_twister_engine
// specialization ([rand.predef]): w=64 n=312 m=156 r=31.
namespace {
constexpr int kN = Mt19937_64::kStateSize;
constexpr int kM = 156;
constexpr uint64_t kMatrixA = 0xb5026f5aa96619e9ull;
constexpr uint64_t kLowerMask = (uint64_t{1} << 31) - 1;  // low r bits
constexpr uint64_t kUpperMask = ~kLowerMask;
constexpr uint64_t kInitMultiplier = 6364136223846793005ull;
}  // namespace

void Mt19937_64::seed(uint64_t seed_value) {
  state_[0] = seed_value;
  for (int i = 1; i < kN; ++i) {
    state_[i] =
        kInitMultiplier * (state_[i - 1] ^ (state_[i - 1] >> 62)) +
        static_cast<uint64_t>(i);
  }
  position_ = kN;
}

void Mt19937_64::Twist() {
  for (int i = 0; i < kN; ++i) {
    const uint64_t y =
        (state_[i] & kUpperMask) | (state_[(i + 1) % kN] & kLowerMask);
    state_[i] =
        state_[(i + kM) % kN] ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0);
  }
  position_ = 0;
}

Mt19937_64::result_type Mt19937_64::operator()() {
  if (position_ >= kN) Twist();
  uint64_t y = state_[position_++];
  y ^= (y >> 29) & 0x5555555555555555ull;
  y ^= (y << 17) & 0x71d67fffeda60000ull;
  y ^= (y << 37) & 0xfff7eee000000000ull;
  y ^= y >> 43;
  return y;
}

namespace {

// Binary state layout: "b1:" + 312 little-endian u64 words + u16 position.
constexpr char kBinPrefix[] = "b1:";
constexpr size_t kBinPrefixLen = 3;
constexpr size_t kBinSize = kBinPrefixLen + 8 * kN + 2;
static_assert(kBinSize == Rng::kSerializedStateBytes,
              "kSerializedStateBytes out of sync with the layout");

// memcpy + bswap instead of byte loops: this codec runs 312 times per
// serialized RNG on the control plane's per-request path.
void StoreU64Le(uint64_t value, char* p) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  value = __builtin_bswap64(value);
#endif
  std::memcpy(p, &value, 8);
}

uint64_t ReadU64Le(const char* p) {
  uint64_t value;
  std::memcpy(&value, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  value = __builtin_bswap64(value);
#endif
  return value;
}

// The standard textual token sequence std::mt19937_64's operator<< emits:
// the 312 state words then the draw position, space separated. Accepted so
// a peer still speaking the old wire format interoperates.
bool ParseDecimalTokens(const std::string& text, Mt19937_64* engine) {
  Mt19937_64 restored{Mt19937_64::Uninitialized{}};
  const char* p = text.c_str();
  for (int i = 0; i <= kN; ++i) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(p, &end, 10);
    if (end == p) return false;
    if (i < kN) {
      restored.mutable_state()[i] = value;
    } else {
      if (value > static_cast<unsigned long long>(kN)) return false;
      restored.set_position(static_cast<int>(value));
    }
    p = end;
  }
  while (*p == ' ' || *p == '\n') ++p;
  if (*p != '\0') return false;
  *engine = restored;
  return true;
}

}  // namespace

std::string Rng::SerializeState() const {
  std::string out;
  SerializeStateTo(&out);
  return out;
}

void Rng::SerializeStateTo(std::string* out) const {
  const size_t start = out->size();
  out->resize(start + kBinSize);
  char* p = &(*out)[start];
  std::memcpy(p, kBinPrefix, kBinPrefixLen);
  p += kBinPrefixLen;
  for (int i = 0; i < kN; ++i, p += 8) StoreU64Le(engine_.state()[i], p);
  const uint16_t position = static_cast<uint16_t>(engine_.position());
  p[0] = static_cast<char>(position & 0xff);
  p[1] = static_cast<char>(position >> 8);
}

Status Rng::DeserializeState(const std::string& text) {
  if (text.compare(0, kBinPrefixLen, kBinPrefix) != 0) {
    if (ParseDecimalTokens(text, &engine_)) return Status::OK();
    return Status::InvalidArgument("rng: malformed engine state");
  }
  if (text.size() != kBinSize) {
    return Status::InvalidArgument("rng: malformed engine state");
  }
  // Validate everything before touching engine_ (the error contract says
  // the previous state survives a malformed input), then decode in place —
  // no temporary engine, whose seeding constructor alone costs a full
  // 312-word recurrence.
  const char* p = text.data() + kBinPrefixLen;
  const char* tail = p + 8 * kN;
  const int position = static_cast<uint8_t>(tail[0]) |
                       (static_cast<uint8_t>(tail[1]) << 8);
  if (position > kN) {
    return Status::InvalidArgument("rng: malformed engine state");
  }
  uint64_t* words = engine_.mutable_state();
  for (int i = 0; i < kN; ++i, p += 8) {
    words[i] = ReadU64Le(p);
  }
  engine_.set_position(position);
  return Status::OK();
}

double Rng::LogNormalMeanCv(double mean, double cv) {
  DRLSTREAM_CHECK_GT(mean, 0.0);
  DRLSTREAM_CHECK_GE(cv, 0.0);
  if (cv == 0.0) return mean;
  // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
  // cv^2 = exp(sigma^2) - 1.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  return dist(engine_);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  DRLSTREAM_CHECK_GE(n, k);
  DRLSTREAM_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = UniformInt(i, n - 1);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace drlstream
