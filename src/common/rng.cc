#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace drlstream {

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::DeserializeState(const std::string& text) {
  std::istringstream in(text);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("rng: malformed engine state");
  }
  engine_ = restored;
  return Status::OK();
}

double Rng::LogNormalMeanCv(double mean, double cv) {
  DRLSTREAM_CHECK_GT(mean, 0.0);
  DRLSTREAM_CHECK_GE(cv, 0.0);
  if (cv == 0.0) return mean;
  // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
  // cv^2 = exp(sigma^2) - 1.
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
  return dist(engine_);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  DRLSTREAM_CHECK_GE(n, k);
  DRLSTREAM_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index vector.
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = UniformInt(i, n - 1);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace drlstream
