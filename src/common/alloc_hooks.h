#ifndef DRLSTREAM_COMMON_ALLOC_HOOKS_H_
#define DRLSTREAM_COMMON_ALLOC_HOOKS_H_

#include <cstddef>

/// Thread-local heap-allocation counters backed by global operator new/delete
/// replacements. Linking the `drlstream_alloc_hooks` object library into a
/// binary swaps in counting allocators process-wide; the counters let tests
/// and benches pin the steady-state allocation count of a code path (e.g.
/// "SelectActionInto allocates nothing after warmup").
///
/// Deliberately NOT part of drlstream_common: only the allocation regression
/// test and the micro benches opt in, so production binaries keep the stock
/// allocator.
namespace drlstream {

struct AllocCounters {
  size_t allocations = 0;  // operator new calls on this thread
  size_t bytes = 0;        // total bytes requested on this thread
};

/// Snapshot of this thread's counters since process start.
AllocCounters ReadAllocCounters();

/// Convenience delta: counters now minus `since`.
inline AllocCounters AllocDelta(const AllocCounters& since) {
  const AllocCounters now = ReadAllocCounters();
  return AllocCounters{now.allocations - since.allocations,
                       now.bytes - since.bytes};
}

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_ALLOC_HOOKS_H_
