#ifndef DRLSTREAM_COMMON_CSV_H_
#define DRLSTREAM_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace drlstream {

/// Writes a CSV table to a stream (and optionally to a file). Used by the
/// benchmark harness to emit the exact series the paper's figures plot.
class CsvWriter {
 public:
  /// Creates a writer that emits rows to `out` (not owned).
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes the header row. Call at most once, before any data row.
  void WriteHeader(const std::vector<std::string>& columns);

  /// Writes one data row of strings.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles formatted with `precision`
  /// significant digits after the point.
  void WriteNumericRow(const std::vector<double>& fields, int precision = 4);

  int rows_written() const { return rows_written_; }

 private:
  /// Escapes a field per RFC 4180 (quotes fields containing comma, quote or
  /// newline).
  static std::string Escape(const std::string& field);

  std::ostream* out_;
  int rows_written_ = 0;
  bool header_written_ = false;
};

/// Writes an entire table of doubles with a header to a file.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<double>>& rows);

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_CSV_H_
