#ifndef DRLSTREAM_COMMON_STATUS_H_
#define DRLSTREAM_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace drlstream {

/// Error categories used across the library. Library code does not throw;
/// fallible operations return Status or StatusOr<T> (Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
  kUnimplemented = 7,
  /// An operation did not complete within its deadline (e.g. an RPC over
  /// the control plane's transport). Usually retryable.
  kDeadlineExceeded = 8,
  /// The counterpart of an operation is gone or unreachable (closed
  /// transport, dead agent process). Retryable after reconnecting.
  kUnavailable = 9,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Access to value() on an
/// error result aborts (program bug), mirroring absl::StatusOr semantics.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK result).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::CheckHasValue() const {
  if (!value_.has_value()) internal::DieBadStatusAccess(status_);
}

/// Propagates a non-OK Status from an expression to the caller.
#define DRLSTREAM_RETURN_NOT_OK(expr)                    \
  do {                                                   \
    ::drlstream::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                           \
  } while (false)

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error. `lhs` must be a declaration or assignable lvalue.
#define DRLSTREAM_ASSIGN_OR_RETURN(lhs, expr)            \
  DRLSTREAM_ASSIGN_OR_RETURN_IMPL_(                      \
      DRLSTREAM_CONCAT_(_status_or, __LINE__), lhs, expr)

#define DRLSTREAM_CONCAT_INNER_(a, b) a##b
#define DRLSTREAM_CONCAT_(a, b) DRLSTREAM_CONCAT_INNER_(a, b)
#define DRLSTREAM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_STATUS_H_
