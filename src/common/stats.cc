#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace drlstream {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::vector<double> NormalizeMinMax(const std::vector<double>& values) {
  if (values.empty()) return {};
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  std::vector<double> out(values.size());
  if (mx - mn <= 0.0) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mn) / (mx - mn);
  }
  return out;
}

namespace {

void OnePoleForward(std::vector<double>* v, double alpha) {
  double state = v->empty() ? 0.0 : (*v)[0];
  for (double& x : *v) {
    state += alpha * (x - state);
    x = state;
  }
}

}  // namespace

std::vector<double> FiltFilt(const std::vector<double>& values, double alpha) {
  DRLSTREAM_CHECK_GT(alpha, 0.0);
  DRLSTREAM_CHECK_LE(alpha, 1.0);
  std::vector<double> out = values;
  OnePoleForward(&out, alpha);
  std::reverse(out.begin(), out.end());
  OnePoleForward(&out, alpha);
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<double> MovingAverage(const std::vector<double>& values,
                                  size_t window) {
  DRLSTREAM_CHECK_GE(window, 1u);
  std::vector<double> out(values.size());
  double sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (i >= window) sum -= values[i - window];
    const size_t n = std::min(i + 1, window);
    out[i] = sum / static_cast<double>(n);
  }
  return out;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  DRLSTREAM_CHECK_GE(pct, 0.0);
  DRLSTREAM_CHECK_LE(pct, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace drlstream
