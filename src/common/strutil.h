#ifndef DRLSTREAM_COMMON_STRUTIL_H_
#define DRLSTREAM_COMMON_STRUTIL_H_

#include <string>
#include <vector>

namespace drlstream {

/// Edit distance for did-you-mean suggestions (small strings only).
int Levenshtein(const std::string& a, const std::string& b);

/// Nearest key within `max_distance` edits of `key`, or "" when none is
/// close enough. Ties keep the earliest candidate.
std::string NearestKey(const std::string& key,
                       const std::vector<std::string>& candidates,
                       int max_distance = 2);

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_STRUTIL_H_
