#include "common/alloc_hooks.h"

#include <cstdlib>
#include <new>

namespace drlstream {
namespace {

thread_local AllocCounters g_counters;

void* CountedAlloc(size_t size) {
  g_counters.allocations += 1;
  g_counters.bytes += size;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(size_t size, std::align_val_t align) {
  g_counters.allocations += 1;
  g_counters.bytes += size;
  void* p = std::aligned_alloc(static_cast<size_t>(align),
                               size == 0 ? static_cast<size_t>(align) : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

AllocCounters ReadAllocCounters() { return g_counters; }

}  // namespace drlstream

// Global replacements (C++20 set). Deletes are pass-through: only the
// allocation side is counted, which is what the regression tests pin.
void* operator new(size_t size) { return drlstream::CountedAlloc(size); }
void* operator new[](size_t size) { return drlstream::CountedAlloc(size); }
void* operator new(size_t size, std::align_val_t align) {
  return drlstream::CountedAllocAligned(size, align);
}
void* operator new[](size_t size, std::align_val_t align) {
  return drlstream::CountedAllocAligned(size, align);
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  try {
    return drlstream::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  try {
    return drlstream::CountedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
