#include "common/strutil.h"

#include <algorithm>
#include <utility>

namespace drlstream {

int Levenshtein(const std::string& a, const std::string& b) {
  std::vector<int> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string NearestKey(const std::string& key,
                       const std::vector<std::string>& candidates,
                       int max_distance) {
  int best_distance = max_distance + 1;
  std::string suggestion;
  for (const std::string& candidate : candidates) {
    const int d = Levenshtein(key, candidate);
    if (d < best_distance) {
      best_distance = d;
      suggestion = candidate;
    }
  }
  return suggestion;
}

}  // namespace drlstream
