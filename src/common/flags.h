#ifndef DRLSTREAM_COMMON_FLAGS_H_
#define DRLSTREAM_COMMON_FLAGS_H_

#include <map>
#include <string>

#include "common/status.h"

namespace drlstream {

/// Minimal --key=value command-line parsing for the bench and example
/// binaries. Unrecognized positional arguments are an error; flags not
/// looked up are ignored.
///
/// Binaries that run a scheduling policy take `--policy=NAME`, where NAME
/// is a key in the policy registry (rl/policy_registry.h; built-ins: ddpg,
/// dqn, round-robin, model-based). Callers validate the name against the
/// registry, so an unknown policy produces an error naming the registered
/// entries (with a did-you-mean suggestion), and `--help` lists them.
class Flags {
 public:
  /// Parses argv; returns InvalidArgument on malformed input
  /// (non `--key=value` / `--key value` arguments).
  static StatusOr<Flags> Parse(int argc, char** argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int GetInt(const std::string& key, int default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Applies process-wide flags shared by every binary:
///   --threads=N        sizes the global thread pool (common/thread_pool.h)
///                      used by the agents' parallel target evaluation.
///   --log-level=L      minimum log level emitted to stderr
///                      (debug|info|warning|error, see common/logging.h).
///   --metrics          enables the obs metrics registry; a Prometheus text
///                      snapshot and a JSON snapshot are written at exit.
///   --metrics-out=P    Prometheus snapshot path (default metrics.prom;
///                      implies --metrics).
///   --metrics-json=P   JSON snapshot path (default metrics.json; implies
///                      --metrics).
///   --trace-out=P      enables decision-pipeline tracing (and --metrics);
///                      the Chrome trace-event JSON is written to P at exit.
///   --simd=auto|off    SIMD kernel dispatch (common/simd.h): auto picks
///                      AVX2 when the CPU supports it, off forces the
///                      scalar fold. Both produce bit-identical results;
///                      the DRLSTREAM_SIMD env var sets the same mode
///                      before main() for binaries that never parse flags.
/// Unset flags leave the corresponding defaults untouched.
void ApplyProcessFlags(const Flags& flags);

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_FLAGS_H_
