#ifndef DRLSTREAM_COMMON_LOGGING_H_
#define DRLSTREAM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace drlstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level emitted to stderr. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error" into `out`
/// (case-sensitive, like every other flag value). Returns false on an
/// unrecognized name, leaving `out` untouched. Wired to the process-wide
/// --log-level flag (common/flags.h).
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts after emitting; used by DRLSTREAM_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define DRLSTREAM_LOG(level)                                      \
  ::drlstream::internal::LogMessage(::drlstream::LogLevel::level, \
                                    __FILE__, __LINE__)

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programming errors (not recoverable conditions, which return Status).
#define DRLSTREAM_CHECK(cond)                                            \
  if (!(cond))                                                           \
  ::drlstream::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define DRLSTREAM_CHECK_EQ(a, b) DRLSTREAM_CHECK((a) == (b))
#define DRLSTREAM_CHECK_NE(a, b) DRLSTREAM_CHECK((a) != (b))
#define DRLSTREAM_CHECK_LT(a, b) DRLSTREAM_CHECK((a) < (b))
#define DRLSTREAM_CHECK_LE(a, b) DRLSTREAM_CHECK((a) <= (b))
#define DRLSTREAM_CHECK_GT(a, b) DRLSTREAM_CHECK((a) > (b))
#define DRLSTREAM_CHECK_GE(a, b) DRLSTREAM_CHECK((a) >= (b))

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_LOGGING_H_
