#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace drlstream {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load());
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= g_log_level.load()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace drlstream
