#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace drlstream {
namespace {

/// Initial mode from the environment: DRLSTREAM_SIMD=off forces scalar
/// before main() runs, so even test binaries that never parse flags (gtest
/// suites under ctest) honor it.
SimdMode InitialMode() {
  const char* env = std::getenv("DRLSTREAM_SIMD");
  if (env != nullptr && std::strcmp(env, "off") == 0) return SimdMode::kOff;
  return SimdMode::kAuto;
}

std::atomic<SimdMode>& ModeFlag() {
  static std::atomic<SimdMode> mode{InitialMode()};
  return mode;
}

}  // namespace

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

SimdMode GetSimdMode() { return ModeFlag().load(std::memory_order_relaxed); }

void SetSimdMode(SimdMode mode) {
  ModeFlag().store(mode, std::memory_order_relaxed);
}

bool SimdEnabled() { return GetSimdMode() == SimdMode::kAuto; }

}  // namespace drlstream
