#ifndef DRLSTREAM_COMMON_RNG_H_
#define DRLSTREAM_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace drlstream {

/// Seeded pseudo-random number generator used everywhere in the library so
/// that experiments are reproducible. Wraps a mersenne twister with the
/// distributions the simulator and agents need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    DRLSTREAM_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Exponential with the given rate (events per unit time); returns an
  /// inter-arrival time. Rate must be positive.
  double Exponential(double rate) {
    DRLSTREAM_CHECK_GT(rate, 0.0);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  /// Log-normal parameterized by the mean and coefficient of variation of
  /// the *resulting* distribution (convenient for service times).
  double LogNormalMeanCv(double mean, double cv);

  /// Poisson with the given mean (>= 0); returns 0 for mean 0.
  int Poisson(double mean) {
    DRLSTREAM_CHECK_GE(mean, 0.0);
    if (mean == 0.0) return 0;
    std::poisson_distribution<int> dist(mean);
    return dist(engine_);
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    std::shuffle(values->begin(), values->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Underlying engine, for std algorithms that need a URBG.
  std::mt19937_64& engine() { return engine_; }

  /// Derives an independent child generator; used to give each component a
  /// private stream while keeping global determinism.
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state as the standard mersenne-twister
  /// textual token sequence. A generator restored from it (possibly in
  /// another process — this is how the control plane ships the exploration
  /// RNG to a remote agent) continues the exact same draw sequence, so
  /// in-process and remote runs stay bit-identical. The Rng methods above
  /// construct their distribution per call, so the engine state is the
  /// whole state.
  std::string SerializeState() const;
  /// Restores the state written by SerializeState; InvalidArgument on
  /// malformed input (the previous state is left untouched).
  Status DeserializeState(const std::string& text);

 private:
  std::mt19937_64 engine_;
};

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_RNG_H_
