#ifndef DRLSTREAM_COMMON_RNG_H_
#define DRLSTREAM_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace drlstream {

/// Bit-exact reimplementation of std::mt19937_64 (the standard pins the
/// mersenne_twister_engine algorithm, single-value seeding included) with
/// direct state access. std::mt19937_64 only exposes its 312-word state
/// through iostream decimal tokens, which costs ~40us to round-trip; the
/// control plane serializes the exploration RNG into every kExplore
/// GetSchedule RPC, so that cost dominated the per-request budget. Owning
/// the words makes (de)serialization a fixed-width hex scan. Equality with
/// std::mt19937_64 draw-for-draw is pinned by common_test.
class Mt19937_64 {
 public:
  using result_type = uint64_t;
  static constexpr int kStateSize = 312;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Tag for constructing an engine without running the 312-word seeding
  /// recurrence; the state is garbage until restored (DeserializeState).
  struct Uninitialized {};

  explicit Mt19937_64(uint64_t seed_value = 5489u) { seed(seed_value); }
  explicit Mt19937_64(Uninitialized) {}

  void seed(uint64_t seed_value);
  result_type operator()();

  /// Raw state, for serialization: 312 words plus the draw position in
  /// [0, kStateSize] (kStateSize means "twist before the next draw").
  const uint64_t* state() const { return state_; }
  uint64_t* mutable_state() { return state_; }
  int position() const { return position_; }
  void set_position(int position) { position_ = position; }

  friend bool operator==(const Mt19937_64& a, const Mt19937_64& b) {
    return a.position_ == b.position_ &&
           std::equal(a.state_, a.state_ + kStateSize, b.state_);
  }

 private:
  void Twist();

  uint64_t state_[kStateSize];
  int position_ = kStateSize;
};

/// Seeded pseudo-random number generator used everywhere in the library so
/// that experiments are reproducible. Wraps a mersenne twister with the
/// distributions the simulator and agents need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// An Rng whose engine holds unseeded garbage; the only valid first use
  /// is DeserializeState(). Exists because seeding runs a 312-word
  /// recurrence, which restore-per-request paths (the control plane
  /// restores a serialized exploration RNG on every kExplore GetSchedule)
  /// would pay just to overwrite.
  static Rng Unseeded() { return Rng(Mt19937_64::Uninitialized{}); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    DRLSTREAM_CHECK_LE(lo, hi);
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Exponential with the given rate (events per unit time); returns an
  /// inter-arrival time. Rate must be positive.
  double Exponential(double rate) {
    DRLSTREAM_CHECK_GT(rate, 0.0);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  /// Log-normal parameterized by the mean and coefficient of variation of
  /// the *resulting* distribution (convenient for service times).
  double LogNormalMeanCv(double mean, double cv);

  /// Poisson with the given mean (>= 0); returns 0 for mean 0.
  int Poisson(double mean) {
    DRLSTREAM_CHECK_GE(mean, 0.0);
    if (mean == 0.0) return 0;
    std::poisson_distribution<int> dist(mean);
    return dist(engine_);
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    std::shuffle(values->begin(), values->end(), engine_);
  }

  /// Samples `k` distinct indices from [0, n) without replacement.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Underlying engine, for std algorithms that need a URBG.
  Mt19937_64& engine() { return engine_; }

  /// Derives an independent child generator; used to give each component a
  /// private stream while keeping global determinism.
  Rng Fork() { return Rng(engine_()); }

  /// Serializes the full engine state ("b1:" + 312 little-endian u64 words
  /// + u16 draw position). A generator restored from it (possibly in
  /// another process — this is how the control plane ships the exploration
  /// RNG to a remote agent) continues the exact same draw sequence, so
  /// in-process and remote runs stay bit-identical. The Rng methods above
  /// construct their distribution per call, so the engine state is the
  /// whole state.
  std::string SerializeState() const;
  /// Serialized size of SerializeState(): "b1:" + 312 u64 words + u16.
  static constexpr size_t kSerializedStateBytes =
      3 + 8 * static_cast<size_t>(Mt19937_64::kStateSize) + 2;
  /// Appends SerializeState() to `out` — encoders that already own a
  /// growing buffer skip the intermediate string.
  void SerializeStateTo(std::string* out) const;
  /// Restores the state written by SerializeState; also accepts the
  /// standard mersenne-twister textual token sequence (what std::mt19937_64
  /// operator<< emits — the pre-hex wire format). InvalidArgument on
  /// malformed input (the previous state is left untouched).
  Status DeserializeState(const std::string& text);

 private:
  explicit Rng(Mt19937_64::Uninitialized tag) : engine_(tag) {}

  Mt19937_64 engine_;
};

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_RNG_H_
