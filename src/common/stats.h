#ifndef DRLSTREAM_COMMON_STATS_H_
#define DRLSTREAM_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace drlstream {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  size_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Min-max normalization used by the paper for reward plots:
/// (r - r_min) / (r_max - r_min). Returns 0.5 everywhere when the series is
/// constant (paper's formula is undefined there).
std::vector<double> NormalizeMinMax(const std::vector<double>& values);

/// Zero-phase forward-backward smoothing (the paper cites Gustafsson's
/// forward-backward filtering [20]). Applies a single-pole IIR low-pass with
/// coefficient `alpha` in (0, 1] forward then backward, with the filter state
/// initialized to the first sample in each direction so there is no startup
/// transient. Larger `alpha` = less smoothing; alpha = 1 is identity.
std::vector<double> FiltFilt(const std::vector<double>& values, double alpha);

/// Simple trailing moving average with the given window (>= 1).
std::vector<double> MovingAverage(const std::vector<double>& values,
                                  size_t window);

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& values);

/// Percentile in [0, 100] using linear interpolation; input need not be
/// sorted. Returns 0 when empty.
double Percentile(std::vector<double> values, double pct);

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_STATS_H_
