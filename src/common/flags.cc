#include "common/flags.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace drlstream {

StatusOr<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";  // Bare flag, e.g. --verbose.
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int Flags::GetInt(const std::string& key, int default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

namespace {

// Export paths captured for the at-exit snapshot writers (empty = skip).
std::string* ExitTracePath() {
  static std::string* const path = new std::string();
  return path;
}
std::string* ExitPrometheusPath() {
  static std::string* const path = new std::string();
  return path;
}
std::string* ExitJsonPath() {
  static std::string* const path = new std::string();
  return path;
}

void WriteObsSnapshotsAtExit() {
  if (!ExitTracePath()->empty()) {
    obs::Tracer::Get().WriteJson(*ExitTracePath());
  }
  if (ExitPrometheusPath()->empty() && ExitJsonPath()->empty()) return;
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  if (!ExitPrometheusPath()->empty()) {
    obs::WriteTextFile(*ExitPrometheusPath(), obs::ToPrometheusText(snapshot));
  }
  if (!ExitJsonPath()->empty()) {
    obs::WriteTextFile(*ExitJsonPath(), obs::ToJson(snapshot) + "\n");
  }
}

void RegisterObsExitHandler() {
  static const bool registered = [] {
    std::atexit(WriteObsSnapshotsAtExit);
    return true;
  }();
  (void)registered;
}

}  // namespace

void ApplyProcessFlags(const Flags& flags) {
  if (flags.Has("threads")) {
    SetGlobalThreadCount(flags.GetInt("threads", GlobalThreadCount()));
  }
  if (flags.Has("log-level")) {
    const std::string name = flags.GetString("log-level", "info");
    LogLevel level = GetLogLevel();
    if (ParseLogLevel(name, &level)) {
      SetLogLevel(level);
    } else {
      DRLSTREAM_LOG(kWarning)
          << "unknown --log-level '" << name
          << "' (expected debug|info|warning|error); keeping current level";
    }
  }

  if (flags.Has("simd")) {
    const std::string mode = flags.GetString("simd", "auto");
    if (mode == "off") {
      SetSimdMode(SimdMode::kOff);
    } else if (mode == "auto") {
      SetSimdMode(SimdMode::kAuto);
    } else {
      DRLSTREAM_LOG(kWarning) << "unknown --simd '" << mode
                              << "' (expected auto|off); keeping current mode";
    }
  }

  const bool trace = flags.Has("trace-out");
  const bool metrics = trace || flags.GetBool("metrics", false) ||
                       flags.Has("metrics-out") || flags.Has("metrics-json");
  if (metrics) {
    obs::SetMetricsEnabled(true);
    *ExitPrometheusPath() = flags.GetString("metrics-out", "metrics.prom");
    *ExitJsonPath() = flags.GetString("metrics-json", "metrics.json");
  }
  if (trace) {
    obs::SetTraceEnabled(true);
    *ExitTracePath() = flags.GetString("trace-out", "trace.json");
  }
  if (metrics || trace) RegisterObsExitHandler();
}

}  // namespace drlstream
