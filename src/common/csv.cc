#include "common/csv.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace drlstream {

std::string CsvWriter::Escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  DRLSTREAM_CHECK(!header_written_);
  DRLSTREAM_CHECK_EQ(rows_written_, 0);
  header_written_ = true;
  WriteRow(columns);
  --rows_written_;  // Header does not count as a data row.
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_written_;
}

void CsvWriter::WriteNumericRow(const std::vector<double>& fields,
                                int precision) {
  std::vector<std::string> strs;
  strs.reserve(fields.size());
  for (double f : fields) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << f;
    strs.push_back(ss.str());
  }
  WriteRow(strs);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::string>& columns,
                    const std::vector<std::vector<double>>& rows) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  CsvWriter writer(&file);
  writer.WriteHeader(columns);
  for (const auto& row : rows) {
    if (row.size() != columns.size()) {
      return Status::InvalidArgument("row width does not match header");
    }
    writer.WriteNumericRow(row);
  }
  return Status::OK();
}

}  // namespace drlstream
