#ifndef DRLSTREAM_COMMON_SIMD_H_
#define DRLSTREAM_COMMON_SIMD_H_

namespace drlstream {

/// Process-wide SIMD dispatch policy for the compute kernels (nn/kernels.h).
///
///   kAuto - use the widest instruction set both compiled in and reported
///           by cpuid (today: AVX2 on x86-64), scalar otherwise.
///   kOff  - force the scalar fallback everywhere, regardless of hardware.
///
/// The initial mode comes from the DRLSTREAM_SIMD environment variable
/// ("off" disables, anything else or unset means auto); binaries that parse
/// flags can override it at startup with --simd=off|auto (see
/// common/flags.h). Kernels re-read the mode on every call through one
/// relaxed atomic load, so tests may flip it between calls to compare both
/// paths in-process.
enum class SimdMode { kAuto, kOff };

/// True if the CPU reports AVX2 support (cpuid, cached after first call).
/// Always false on non-x86 targets.
bool CpuSupportsAvx2();

SimdMode GetSimdMode();
void SetSimdMode(SimdMode mode);

/// Resolved policy: true when mode is kAuto (SIMD kernels may be used if
/// available). Callers still check instruction-set availability.
bool SimdEnabled();

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_SIMD_H_
