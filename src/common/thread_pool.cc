#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/metrics.h"

namespace drlstream {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter* PoolJobs() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Get().counter("threadpool.jobs");
  return counter;
}

obs::Gauge* PoolQueueDepth() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Get().gauge("threadpool.queue_depth");
  return gauge;
}

obs::Histogram* PoolTaskWaitUs() {
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Get().histogram("threadpool.task_wait_us");
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t last_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && job_generation_ != last_generation);
      });
      if (shutdown_) return;
      last_generation = job_generation_;
      job = job_;
    }
    if (job->post_time_us != 0) {
      // Time from job post to this worker picking up its first index.
      PoolTaskWaitUs()->Record(
          static_cast<double>(SteadyNowUs() - job->post_time_us));
    }
    RunJob(job.get());
  }
}

void ThreadPool::RunJob(Job* job) {
  int done = 0;
  int i;
  while ((i = job->next.fetch_add(1, std::memory_order_relaxed)) < job->n) {
    (*job->fn)(i);
    ++done;
  }
  if (done > 0 &&
      job->remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
    // This thread finished the last index; wake the caller.
    std::lock_guard<std::mutex> lock(mutex_);
    job_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const bool metrics = obs::MetricsEnabled();
  if (metrics) PoolJobs()->Add(1);
  if (num_threads_ == 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->remaining.store(n, std::memory_order_relaxed);
  if (metrics) {
    job->post_time_us = SteadyNowUs();
    PoolQueueDepth()->Set(static_cast<double>(n));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_generation_;
  }
  job_ready_.notify_all();
  RunJob(job.get());
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) <= 0;
    });
    job_.reset();
  }
  if (metrics) PoolQueueDepth()->Set(0.0);
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 8);
}

}  // namespace

ThreadPool* GlobalThreadPool() {
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  return slot.get();
}

void SetGlobalThreadCount(int num_threads) {
  GlobalPoolSlot() = std::make_unique<ThreadPool>(std::max(1, num_threads));
}

int GlobalThreadCount() { return GlobalThreadPool()->num_threads(); }

}  // namespace drlstream
