#ifndef DRLSTREAM_COMMON_THREAD_POOL_H_
#define DRLSTREAM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drlstream {

/// A small reusable pool of worker threads for data-parallel loops in the
/// training hot path (e.g. the per-transition target computation of
/// DdpgAgent::TrainStep).
///
/// Determinism contract: ParallelFor(n, fn) invokes fn(i) exactly once for
/// every i in [0, n). Workers race only for *which* index they run next;
/// as long as fn(i) writes exclusively to slot i of its output (no shared
/// accumulators, no shared RNG), the results are bit-identical for every
/// thread count, including 1. All code in this repository that uses the
/// pool follows this slot-per-index discipline.
///
/// ParallelFor is not reentrant: fn must not call ParallelFor on the same
/// pool.
class ThreadPool {
 public:
  /// Creates `num_threads - 1` background workers; the caller of
  /// ParallelFor acts as the remaining thread. num_threads < 1 is clamped
  /// to 1 (purely serial, no background threads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// pool. Blocks until all n invocations completed. fn must not throw.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  /// One ParallelFor invocation. Each job owns its counters so a worker
  /// that wakes late (holding a stale job) can never touch a newer job's
  /// state: its `next` is already exhausted, so it no-ops.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int n = 0;
    std::atomic<int> next{0};
    std::atomic<int> remaining{0};
    /// Post timestamp (steady-clock µs) captured only when the obs metrics
    /// registry is enabled; 0 means "don't record wait times".
    int64_t post_time_us = 0;
  };

  void WorkerLoop();
  /// Pulls indices from `job` until it is exhausted.
  void RunJob(Job* job);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  std::shared_ptr<Job> job_;  // null = no job
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;
};

/// Process-wide pool shared by the agents. Defaults to
/// min(hardware_concurrency, 8) threads; override with
/// SetGlobalThreadCount (e.g. from the --threads flag, see
/// ApplyProcessFlags in common/flags.h).
ThreadPool* GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` threads (clamped to
/// >= 1). Not thread-safe against concurrent GlobalThreadPool() use; call
/// it from startup code or between training steps.
void SetGlobalThreadCount(int num_threads);

int GlobalThreadCount();

}  // namespace drlstream

#endif  // DRLSTREAM_COMMON_THREAD_POOL_H_
