#ifndef DRLSTREAM_CTRL_HTTP_INTROSPECT_H_
#define DRLSTREAM_CTRL_HTTP_INTROSPECT_H_

#include <poll.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace drlstream::ctrl {

/// What a handler returns for one GET.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A deliberately minimal HTTP/1.0 responder for live introspection
/// (GET /metrics, GET /statusz), designed to be multiplexed into an
/// existing poll() event loop rather than to own a thread:
///
///   - AppendPollFds() contributes the listener + connection pollfds to
///     the loop's poll set (returns how many were added);
///   - OnPollResults() services exactly those entries: accepts, reads
///     request bytes, invokes the handler once a request line is complete,
///     and flushes the response.
///
/// Every fd is non-blocking; a connection is served one request and closed
/// (Connection: close), which sidesteps keep-alive bookkeeping entirely.
/// Requests are capped at kMaxRequestBytes; non-GET methods get 405,
/// oversized or malformed requests 400. All parsing and handler execution
/// happen on the caller's (event-loop) thread, so handlers may read
/// loop-owned state without locks.
class HttpIntrospect {
 public:
  using Handler = std::function<HttpResponse(const std::string& path)>;

  static constexpr size_t kMaxRequestBytes = 8192;
  static constexpr int kMaxConnections = 32;

  /// Binds and listens on host:port (port 0 = ephemeral; see port()).
  static StatusOr<std::unique_ptr<HttpIntrospect>> Bind(
      const std::string& host, int port);

  ~HttpIntrospect();
  HttpIntrospect(const HttpIntrospect&) = delete;
  HttpIntrospect& operator=(const HttpIntrospect&) = delete;

  /// The bound TCP port.
  int port() const { return port_; }

  /// Appends the listener and every open connection to `pfds`; returns the
  /// number of entries added. Call once per loop iteration, immediately
  /// before poll().
  size_t AppendPollFds(std::vector<struct pollfd>* pfds);

  /// Services the `count` pollfd entries previously appended at `pfds`
  /// (the same iteration's results): accepts new connections, pumps
  /// request bytes, runs `handler` for completed requests, flushes and
  /// closes finished connections.
  void OnPollResults(const struct pollfd* pfds, size_t count,
                     const Handler& handler);

 private:
  struct Conn {
    int fd = -1;
    std::string in;        // request bytes until the blank line
    std::string out;       // rendered response awaiting flush
    size_t out_off = 0;
    bool responding = false;  // request parsed; draining `out`
  };

  HttpIntrospect(int listen_fd, int port);
  void ServiceConn(Conn* conn, const Handler& handler);
  void AcceptReady(const Handler& handler);

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<Conn> conns_;
};

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_HTTP_INTROSPECT_H_
