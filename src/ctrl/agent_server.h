#ifndef DRLSTREAM_CTRL_AGENT_SERVER_H_
#define DRLSTREAM_CTRL_AGENT_SERVER_H_

#include <atomic>
#include <string>

#include "common/status.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "net/wire.h"
#include "rl/policy.h"

namespace drlstream::ctrl {

struct AgentServerOptions {
  /// Recv timeout of the serving loop; shorter means faster reaction to
  /// Stop(), at the price of more wakeups.
  int poll_timeout_ms = 200;
  /// When > 0, the server closes the connection *without replying* after
  /// this many policy RPCs (GetSchedule/Observe/TrainStep/SaveArtifact) —
  /// the deterministic "agent dies mid-run" hook the degradation tests and
  /// the kill-the-agent experiment recipe use. 0 disables.
  int max_requests = 0;
};

/// Serves any rl::Policy over a Transport: the DRL agent side of the
/// paper's Section 3.1 split, where the agent runs outside the DSDPS and
/// the master's custom scheduler talks to it over the control plane.
/// One connection at a time; requests on a connection are handled strictly
/// in order (the protocol is request/response, no pipelining).
class AgentServer {
 public:
  AgentServer(rl::Policy* policy, AgentServerOptions options)
      : policy_(policy), options_(options) {}

  /// Serves one connection until the peer disconnects (returns OK), Stop()
  /// is called (OK), or the transport fails hard (the error). A request
  /// that fails to decode gets a kErrorResponse reply and ends the
  /// connection — a peer speaking garbage cannot be trusted with framing.
  Status Serve(net::Transport* transport);

  /// Accept loop: serves connections sequentially until Stop() or a hard
  /// listener error. The common agent-process main loop.
  Status ServeTcp(net::TcpListener* listener);

  /// Makes Serve/ServeTcp return after the current request. Safe from any
  /// thread (pair with Transport::Close / TcpListener::Close to interrupt a
  /// blocked Recv/Accept immediately).
  void Stop() { stop_.store(true, std::memory_order_release); }

  rl::Policy* policy() const { return policy_; }

 private:
  /// Handles one decoded frame; fills `reply` (type + payload). Returns
  /// false when the connection must end without replying (max_requests
  /// exhausted).
  bool HandleFrame(const net::Frame& frame, net::MsgType* reply_type,
                   std::string* reply_payload);

  rl::Policy* policy_;
  AgentServerOptions options_;
  std::atomic<bool> stop_{false};
  int policy_requests_ = 0;
};

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_AGENT_SERVER_H_
