#ifndef DRLSTREAM_CTRL_AGENT_SERVER_H_
#define DRLSTREAM_CTRL_AGENT_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ctrl/http_introspect.h"
#include "ctrl/shared_replay.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "net/wakeup.h"
#include "net/wire.h"
#include "rl/policy.h"
#include "rl/policy_registry.h"

namespace drlstream::ctrl {

struct AgentServerOptions {
  /// Poll timeout of the event loop; shorter means faster reaction to
  /// Stop(), at the price of more wakeups.
  int poll_timeout_ms = 200;
  /// When > 0, the server closes a session *without replying* after this
  /// many policy RPCs (GetSchedule/Observe/TrainStep/SaveArtifact) on that
  /// session — the deterministic "agent dies mid-run" hook the degradation
  /// tests and the kill-the-agent experiment recipe use. 0 disables.
  /// Counted per session, matching the old one-connection-at-a-time server.
  int max_requests = 0;
  /// Hard cap on concurrent sessions; connections beyond it are refused
  /// with a kErrorResponse and closed.
  int max_sessions = 1024;
  /// When true (default), kExplore GetSchedule requests that arrive in the
  /// same loop iteration and hit the same policy instance are fused into
  /// one ForwardBatch GEMM. Guaranteed bit-identical to sequential serving
  /// (see DESIGN.md §15); the switch exists so tests can pin that claim.
  bool batch_inference = true;
  /// Frames drained per session per loop iteration before yielding to the
  /// other sessions (fairness bound; leftovers re-poll with zero timeout).
  int max_frames_per_session_per_iteration = 64;
  /// Slow-request logging: a handled request whose server-side latency
  /// (receive -> reply encoded, queue wait included) exceeds this many
  /// milliseconds is logged at warning level with its trace id, and counts
  /// in ctrl.server.slow_rpcs. 0 disables (and keeps the per-frame clock
  /// read off the disabled path).
  double slow_rpc_ms = 0.0;
  /// Live introspection endpoint (GET /metrics, GET /statusz) multiplexed
  /// into the event loop's poll(). -1 disables; 0 binds an ephemeral port
  /// (call BindHttp before starting the loop to learn which).
  int http_port = -1;
  std::string http_host = "127.0.0.1";
  /// Highest wire protocol version this server admits. Frames above it are
  /// answered with a kErrorResponse naming the version and the session is
  /// poisoned — exactly how a genuinely older binary reacts — so tests can
  /// pin the MasterClient's v3 -> v2 Hello downgrade against a "v2-only"
  /// server without an old build.
  uint16_t max_wire_version = net::kWireMaxVersion;
};

/// Serves rl::Policy instances over Transports: the DRL agent side of the
/// paper's Section 3.1 split, where the agent runs outside the DSDPS and
/// each master's custom scheduler talks to it over the control plane.
///
/// One poll()-based event loop serves N concurrent sessions. Each session
/// is a framed connection with its own read/write buffering and its own
/// policy binding:
///
///  - Shared-policy mode (`AgentServer(policy, options)`): every session is
///    served by the one policy, and Observe/TrainStep flow through a
///    cross-session ExperiencePool — the paper's transition sample database
///    pooled across masters.
///  - Registry mode (`AgentServer(context, default_key, options)`): each
///    session gets its own policy instance, created through the
///    PolicyRegistry from the key in its Hello (empty key = default_key).
///    Sessions are fully independent; serving N masters is bit-identical
///    to serving each alone.
///
/// Determinism contract: requests are processed in a canonical total order
/// — ascending session id (accept order, not fd order), arrival order
/// within a session — and only maximal runs of consecutive GetSchedule
/// requests are fused into batched inference. Mutating requests (Observe,
/// TrainStep, SaveArtifact, Hello) flush the pending batch first, so the
/// responses are bit-identical to serving the same arrival order
/// sequentially.
class AgentServer {
 public:
  /// Shared-policy server: all sessions feed `policy` and its experience
  /// pool. `policy` must outlive the server. This is the drop-in
  /// equivalent of the old single-connection server.
  AgentServer(rl::Policy* policy, AgentServerOptions options);

  /// Registry-mode server: each session resolves its own policy through
  /// PolicyRegistry::Create against `*context` (which must outlive the
  /// server). Sessions must Hello before policy RPCs.
  AgentServer(const rl::PolicyContext* context, std::string default_key,
              AgentServerOptions options);

  ~AgentServer();

  /// Serves one connection until the peer disconnects (returns OK), Stop()
  /// is called (OK), or the event loop fails hard (the error). A request
  /// that fails to decode gets a kErrorResponse reply and ends the
  /// connection — a peer speaking garbage cannot be trusted with framing.
  /// Concurrent sessions added via AddSession are served alongside.
  Status Serve(net::Transport* transport);

  /// Accept loop: serves all connections concurrently until Stop() or a
  /// hard listener error. The common agent-process main loop.
  Status ServeTcp(net::TcpListener* listener);

  /// Runs the event loop with no listener: sessions arrive only through
  /// AddSession. Returns after Stop(). The loopback-stress entry point.
  Status Run();

  /// Hands a connected transport to the server (thread-safe; wakes the
  /// loop). Returns the accept-order session id the server will use.
  /// The session starts being served once a loop (Serve/ServeTcp/Run) is
  /// running.
  StatusOr<uint64_t> AddSession(std::unique_ptr<net::Transport> transport);

  /// Makes the event loop return promptly, closing all sessions (peers see
  /// kUnavailable, even mid-RPC). Safe from any thread.
  void Stop();

  /// Async-signal-safe Stop(): flags the loop and pokes the wake pipe
  /// without taking locks (an atomic store + at most one pipe write). Safe
  /// from a SIGINT/SIGTERM handler once a serving call has started — the
  /// agent_server example installs exactly that so a traced server flushes
  /// its at-exit observability snapshots on Ctrl-C instead of dying with
  /// an unwritten trace buffer.
  void RequestStop();

  /// Binds the HTTP introspection listener eagerly and returns the bound
  /// port (options.http_port may be 0 for ephemeral). Call at most once,
  /// before the event loop starts; when never called, the loop binds from
  /// options_.http_port itself (if >= 0).
  StatusOr<int> BindHttp();

  /// The shared policy (nullptr in registry mode).
  rl::Policy* policy() const { return shared_policy_; }
  /// The cross-session pool (nullptr in registry mode).
  const ExperiencePool* experience_pool() const { return pool_.get(); }

 private:
  /// Per-session readiness flag for transports without a pollable fd
  /// (loopback): the transport marks its session ready and arms the shared
  /// wake pipe. The pump phase probes only flagged sessions (fd-backed
  /// ones use poll revents instead), keeping each loop iteration
  /// O(sessions with traffic) rather than O(sessions) TryRecv misses.
  struct SessionWaker : public net::Waker {
    explicit SessionWaker(net::Waker* sink) : sink(sink) {}
    void Wake() override {
      ready.store(true, std::memory_order_release);
      sink->Wake();
    }
    std::atomic<bool> ready{true};  // born ready: frames may predate us
    net::Waker* sink;
  };

  /// Per-session telemetry, updated only on the loop thread and rendered
  /// by /statusz. Plain integers (no atomics): always maintained, because
  /// the status page must work even when --metrics is off.
  struct SessionStats {
    std::string client_name;  // from the Hello
    std::string policy_key;   // resolved registry key (or shared policy's)
    int64_t requests = 0;     // every decoded frame
    int64_t get_schedules = 0;
    int64_t observes = 0;
    int64_t train_steps = 0;
    int64_t bytes_in = 0;   // framed bytes received
    int64_t bytes_out = 0;  // framed bytes enqueued for this session
    int64_t batched_requests = 0;  // GetSchedules served in a fused batch >1
    int64_t max_batch_width = 0;
    double created_us = 0.0;        // tracer-epoch; 0 when obs was off
    double last_activity_us = 0.0;  // last received frame (tracer-epoch)
  };

  struct Session {
    uint64_t id = 0;
    net::Transport* transport = nullptr;     // borrowed view (Serve bootstrap)
    std::unique_ptr<net::Transport> owned;   // owner otherwise
    rl::Policy* policy = nullptr;            // shared, or owned_policy.get()
    std::unique_ptr<rl::Policy> owned_policy;  // registry mode, post-Hello
    uint16_t wire_version = net::kWireVersion;  // last request frame's
    SessionStats stats;
    // Encoded reply frames awaiting flush. Kept frame-granular (not one
    // concatenated byte string) because message-oriented transports
    // (loopback) deliver each TrySend as one message: coalescing two
    // replies into one send would hand a pipelining client a single
    // message holding two frames, which DecodeFrame rejects.
    std::deque<std::string> outbox;
    size_t outbox_off = 0;  // flushed prefix of outbox.front()
    std::unique_ptr<SessionWaker> waker;     // readiness for fd-less transports
    short revents = 0;       // last poll() result for fd-backed transports
    int policy_requests = 0;                 // max_requests accounting
    bool draining = false;  // error reply queued; close once outbox empty
    bool rx_poisoned = false;  // framing violation: stop reading
    bool killed = false;       // max_requests tripped: close, no reply
    bool peer_gone = false;    // transport reported kUnavailable
  };

  /// One received frame (or terminal receive error) in the canonical
  /// processing order of an iteration.
  struct WorkItem {
    Session* session = nullptr;
    net::Frame frame;
    bool is_rx_error = false;
    Status rx_error;  // set when is_rx_error
    /// Tracer-epoch receive stamp; 0 when no observability needs it (the
    /// disabled path never reads the clock).
    double recv_us = 0.0;
  };

  /// A GetSchedule awaiting the batched flush (keeps per-session reply
  /// order while letting consecutive requests share one GEMM).
  struct GetItem;

  Status RunLoop(net::TcpListener* listener, net::Transport* bootstrap,
                 bool exit_when_idle);
  Status EnsureWakeup();
  void AdoptPendingSessionsLocked();
  uint64_t InstallSession(std::unique_ptr<net::Transport> owned,
                          net::Transport* borrowed, uint64_t id);
  void PumpSession(Session* session, std::vector<WorkItem>* work,
                   bool* more_buffered);
  void ProcessWork(std::vector<WorkItem>* work);
  void FlushGetBatch(std::vector<GetItem>* batch);
  void HandleSingle(Session* session, const net::Frame& frame,
                    double recv_us);
  void HandleHello(Session* session, const net::Frame& frame);
  /// Frames a reply echoing the request's wire version and trace envelope
  /// (zeros + v2 for replies without a triggering frame).
  void AppendReply(Session* session, net::MsgType type,
                   std::string_view payload, uint16_t version,
                   net::TraceContext trace);
  void FlushOutbox(Session* session);
  void ReapDeadSessions();
  void CloseSession(Session* session);
  bool SessionDead(const Session& session) const;
  /// The /statusz document: a JSON session table built on the loop thread.
  std::string StatuszJson() const;
  void MaybeLogSlowRpc(const Session& session, net::MsgType type,
                       net::TraceContext trace, double recv_us,
                       double end_us);

  rl::Policy* shared_policy_ = nullptr;           // shared mode
  const rl::PolicyContext* context_ = nullptr;    // registry mode
  std::string default_key_;                       // registry mode
  std::unique_ptr<ExperiencePool> pool_;          // shared mode
  AgentServerOptions options_;
  std::atomic<bool> stop_{false};

  // Event-loop state; touched only by the loop thread while running.
  std::map<uint64_t, Session> sessions_;  // keyed by id => canonical order
  std::unique_ptr<HttpIntrospect> http_;  // bound pre-loop; serviced by loop
  uint64_t sessions_opened_ = 0;          // lifetime total, for /statusz

  // Cross-thread handoff (AddSession / Stop vs the loop thread).
  std::mutex mutex_;
  std::unique_ptr<net::WakeupPipe> wakeup_;              // guarded by mutex_
  // Lock-free mirror of wakeup_.get() for RequestStop(); set once by
  // EnsureWakeup before the loop runs and never reassigned after.
  std::atomic<net::WakeupPipe*> wakeup_raw_{nullptr};
  uint64_t next_session_id_ = 0;                         // guarded by mutex_
  std::deque<std::pair<uint64_t, std::unique_ptr<net::Transport>>>
      pending_sessions_;                                 // guarded by mutex_
  bool running_ = false;                                 // guarded by mutex_
};

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_AGENT_SERVER_H_
