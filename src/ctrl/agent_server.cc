#include "ctrl/agent_server.h"

#include <poll.h>

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ctrl/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace drlstream::ctrl {
namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* connections;
  obs::Histogram* request_us;
  obs::Gauge* sessions;
  obs::Histogram* batch_size;
  obs::Histogram* queue_depth;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return ServerMetrics{registry.counter("ctrl.server.requests"),
                           registry.counter("ctrl.server.errors"),
                           registry.counter("ctrl.server.connections"),
                           registry.histogram("ctrl.server.request_us"),
                           registry.gauge("ctrl.server.sessions"),
                           registry.histogram("ctrl.server.batch_size"),
                           registry.histogram("ctrl.server.queue_depth")};
    }();
    return metrics;
  }
};

/// Whether a message type counts against AgentServerOptions::max_requests
/// (the policy-touching RPCs; handshake and heartbeat are free).
bool IsPolicyRpc(net::MsgType type) {
  switch (type) {
    case net::MsgType::kGetScheduleRequest:
    case net::MsgType::kObserveRequest:
    case net::MsgType::kTrainStepRequest:
    case net::MsgType::kSaveArtifactRequest:
      return true;
    default:
      return false;
  }
}

Status NoPolicyBound() {
  return Status::FailedPrecondition(
      "agent: no policy bound to this session; send Hello with a valid "
      "policy key first");
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// A GetSchedule request parked until the batch flush. Keeping every
/// GetSchedule (explore, greedy, final, even ones that already failed to
/// decode) in the batch — instead of flushing on the non-batchable modes —
/// preserves per-session reply order for free: replies are emitted in batch
/// order, and batch order is arrival order. Only kExplore items actually
/// share a GEMM; greedy/final are const policy calls, so computing them at
/// flush time is order-indifferent.
struct AgentServer::GetItem {
  Session* session = nullptr;
  GetScheduleRequest req;
  Rng rng = Rng::Unseeded();  // restored exploration stream (kExplore)
  rl::PolicyAction action;  // batched SelectAction result (kExplore)
  Status action_status;     // per-slot status from SelectActionBatch
  std::string reply;        // fully framed response, when `ready`
  bool ready = false;       // reply decided without consulting the policy
};

namespace {

/// Encodes a GetScheduleResponse directly as a wire frame (header +
/// payload in one buffer): this is the reply the server emits once per
/// schedule, so it skips the payload-into-frame copy EncodeFrame makes.
std::string FrameGetScheduleReply(const Status& status,
                                  const GetScheduleResponse& body) {
  net::WireWriter writer;
  const size_t frame_start =
      net::BeginFrame(net::MsgType::kGetScheduleResponse, &writer);
  EncodeGetScheduleResponseTo(status, body, &writer);
  net::EndFrame(frame_start, &writer);
  return writer.Release();
}

}  // namespace

AgentServer::AgentServer(rl::Policy* policy, AgentServerOptions options)
    : shared_policy_(policy),
      pool_(std::make_unique<ExperiencePool>(policy)),
      options_(options) {}

AgentServer::AgentServer(const rl::PolicyContext* context,
                         std::string default_key, AgentServerOptions options)
    : context_(context),
      default_key_(std::move(default_key)),
      options_(options) {}

AgentServer::~AgentServer() { Stop(); }

void AgentServer::Stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (wakeup_) wakeup_->Wake();
}

Status AgentServer::EnsureWakeup() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wakeup_) {
    DRLSTREAM_ASSIGN_OR_RETURN(wakeup_, net::WakeupPipe::Create());
  }
  return Status::OK();
}

StatusOr<uint64_t> AgentServer::AddSession(
    std::unique_ptr<net::Transport> transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("agent: AddSession with null transport");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = ++next_session_id_;
  pending_sessions_.emplace_back(id, std::move(transport));
  if (wakeup_) wakeup_->Wake();
  return id;
}

uint64_t AgentServer::InstallSession(std::unique_ptr<net::Transport> owned,
                                     net::Transport* borrowed, uint64_t id) {
  Session session;
  session.id = id;
  session.owned = std::move(owned);
  session.transport = borrowed != nullptr ? borrowed : session.owned.get();
  session.policy = shared_policy_;  // nullptr in registry mode until Hello
  Session& installed = sessions_[id];
  installed = std::move(session);
  // Transports without a pollable fd (loopback) wake the loop through the
  // per-session flag + pipe. The waker is born ready and the self-wake
  // covers frames that were already buffered before the registration
  // (they'd otherwise sit out one full poll timeout).
  installed.waker = std::make_unique<SessionWaker>(wakeup_.get());
  installed.transport->SetReadyWaker(installed.waker.get());
  wakeup_->Wake();
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.connections->Add();
  metrics.sessions->Set(static_cast<double>(sessions_.size()));
  return id;
}

void AgentServer::AdoptPendingSessionsLocked() {
  std::deque<std::pair<uint64_t, std::unique_ptr<net::Transport>>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(pending_sessions_);
  }
  for (auto& [id, transport] : pending) {
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      (void)transport->Send(net::EncodeFrame(
          net::MsgType::kErrorResponse,
          EncodeErrorResponse(
              Status::Unavailable("agent: session limit reached"))));
      transport->Close();
      continue;
    }
    InstallSession(std::move(transport), nullptr, id);
  }
}

bool AgentServer::SessionDead(const Session& session) const {
  if (session.peer_gone) return true;
  return (session.killed || session.draining) && session.outbox.empty();
}

void AgentServer::CloseSession(Session* session) {
  session->transport->SetReadyWaker(nullptr);
  session->transport->Close();
}

void AgentServer::ReapDeadSessions() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (SessionDead(it->second)) {
      CloseSession(&it->second);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  ServerMetrics::Get().sessions->Set(static_cast<double>(sessions_.size()));
}

void AgentServer::PumpSession(Session* session, std::vector<WorkItem>* work,
                              bool* more_buffered) {
  if (session->rx_poisoned || session->draining || session->killed ||
      session->peer_gone) {
    return;
  }
  int pumped = 0;
  while (pumped < options_.max_frames_per_session_per_iteration) {
    StatusOr<std::string> raw = session->transport->TryRecv();
    if (!raw.ok()) {
      const StatusCode code = raw.status().code();
      if (code == StatusCode::kDeadlineExceeded) break;  // nothing buffered
      if (code == StatusCode::kUnavailable) {
        // Peer hung up; frames already pumped still get processed.
        session->peer_gone = true;
        break;
      }
      // Framing violation: the stream offset can't be trusted any more.
      // The error reply slots in *after* this session's valid frames.
      session->rx_poisoned = true;
      work->push_back(WorkItem{session, net::Frame{}, true, raw.status()});
      break;
    }
    StatusOr<net::Frame> frame = net::DecodeFrame(std::move(*raw));
    if (!frame.ok()) {
      session->rx_poisoned = true;
      work->push_back(WorkItem{session, net::Frame{}, true, frame.status()});
      break;
    }
    work->push_back(
        WorkItem{session, std::move(*frame), false, Status::OK()});
    ++pumped;
  }
  if (pumped >= options_.max_frames_per_session_per_iteration) {
    *more_buffered = true;  // fairness cap hit: re-poll with zero timeout
    // Frames may remain buffered in the transport (not the kernel), so
    // poll alone would not re-schedule this session; flag it directly.
    if (session->waker != nullptr) {
      session->waker->ready.store(true, std::memory_order_release);
    }
  }
  if (pumped > 0) {
    ServerMetrics::Get().queue_depth->Record(static_cast<double>(pumped));
  }
}

void AgentServer::FlushGetBatch(std::vector<GetItem>* batch) {
  if (batch->empty()) return;
  const ServerMetrics& metrics = ServerMetrics::Get();
  const auto start = std::chrono::steady_clock::now();

  // Fuse the kExplore slots, grouped by policy instance in first-appearance
  // order. Per-session policies make these groups of one; the shared-policy
  // server turns the whole run into a single ForwardBatch GEMM.
  std::vector<rl::Policy*> policies;
  for (const GetItem& item : *batch) {
    if (item.ready || item.req.mode != ScheduleMode::kExplore) continue;
    bool seen = false;
    for (rl::Policy* policy : policies) seen |= (policy == item.session->policy);
    if (!seen) policies.push_back(item.session->policy);
  }
  std::vector<GetItem*> group;
  std::vector<rl::DecisionRequest> slots;
  for (rl::Policy* policy : policies) {
    group.clear();
    slots.clear();
    for (GetItem& item : *batch) {
      if (item.ready || item.req.mode != ScheduleMode::kExplore) continue;
      if (item.session->policy != policy) continue;
      group.push_back(&item);
      rl::DecisionRequest slot;
      slot.state = &item.req.state;
      slot.epsilon = item.req.epsilon;
      slot.rng = &item.rng;
      slot.out = &item.action;
      slots.push_back(slot);
    }
    if (options_.batch_inference) {
      policy->SelectActionBatch(slots.data(), static_cast<int>(slots.size()));
    } else {
      // The sequential reference path; bit-identical by the
      // SelectActionBatch contract (tests pin this).
      for (rl::DecisionRequest& slot : slots) {
        slot.status =
            policy->SelectActionInto(*slot.state, slot.epsilon, slot.rng,
                                     slot.out);
      }
    }
    metrics.batch_size->Record(static_cast<double>(slots.size()));
    for (size_t i = 0; i < group.size(); ++i) {
      group[i]->action_status = slots[i].status;
    }
  }

  // Emit replies in arrival order (this is what keeps per-session reply
  // order intact). Greedy/final are const policy calls: computing them
  // here, after the explore GEMM, cannot change any result.
  for (GetItem& item : *batch) {
    if (!item.ready) {
      const int base_executors =
          static_cast<int>(item.req.state.assignments.size());
      const bool explore = item.req.mode == ScheduleMode::kExplore;
      StatusOr<sched::Schedule> schedule = Status::Internal("unset");
      switch (item.req.mode) {
        case ScheduleMode::kExplore:
          if (item.action_status.ok()) {
            schedule = std::move(item.action.schedule);
          } else {
            schedule = item.action_status;
          }
          break;
        case ScheduleMode::kGreedy:
          schedule = item.session->policy->GreedyAction(item.req.state);
          break;
        case ScheduleMode::kFinal:
          schedule = item.session->policy->FinalSchedule(item.req.state);
          break;
      }
      if (!schedule.ok()) {
        item.reply = FrameGetScheduleReply(schedule.status(), {});
      } else if (schedule->num_executors() != base_executors ||
                 schedule->num_machines() != item.req.num_machines) {
        item.reply = FrameGetScheduleReply(
            Status::Internal("agent: policy schedule dimensions do not "
                             "match the request state"),
            {});
      } else if (explore) {
        // The hot path: diff + advanced RNG, encoded straight into the
        // frame buffer (no GetScheduleResponse body, no 2.5 KiB rng_state
        // string). Byte-identical to the generic encoder.
        net::WireWriter writer;
        const size_t frame_start = net::BeginFrame(
            net::MsgType::kGetScheduleResponse, &writer);
        EncodeExploreScheduleResponseTo(
            MakeScheduleDiffFromState(item.req.state, *schedule),
            item.action.move_index, item.rng, &writer);
        net::EndFrame(frame_start, &writer);
        item.reply = writer.Release();
      } else {
        GetScheduleResponse body;
        body.diff = MakeScheduleDiffFromState(item.req.state, *schedule);
        item.reply = FrameGetScheduleReply(Status::OK(), body);
      }
    }
    // `reply` is already a complete frame (FrameGetScheduleReply); hand it
    // to the outbox as-is.
    item.session->outbox.push_back(std::move(item.reply));
  }
  const int64_t per_item_us =
      ElapsedUs(start) / static_cast<int64_t>(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    metrics.request_us->Record(static_cast<double>(per_item_us));
  }
  batch->clear();
}

void AgentServer::HandleHello(Session* session, const net::Frame& frame) {
  StatusOr<HelloRequest> request = DecodeHelloRequest(frame.payload);
  if (!request.ok()) {
    AppendReply(session, net::MsgType::kHelloResponse,
                EncodeHelloResponse(request.status(), {}));
    return;
  }
  if (session->policy == nullptr) {
    // Registry mode, first Hello: bind this session's own policy instance.
    const std::string& key =
        request->policy_key.empty() ? default_key_ : request->policy_key;
    StatusOr<std::unique_ptr<rl::Policy>> created =
        rl::PolicyRegistry::Get().Create(key, *context_);
    if (!created.ok()) {
      AppendReply(session, net::MsgType::kHelloResponse,
                  EncodeHelloResponse(created.status(), {}));
      return;
    }
    session->owned_policy = std::move(*created);
    session->policy = session->owned_policy.get();
  }
  // A repeated Hello re-describes the bound policy; it never rebinds (the
  // session would lose its learned weights mid-run).
  HelloResponse body;
  body.policy_name = session->policy->name();
  body.registry_key = session->policy->registry_key();
  body.description = session->policy->Describe();
  body.trainable = session->policy->trainable();
  body.session_id = session->id;
  AppendReply(session, net::MsgType::kHelloResponse,
              EncodeHelloResponse(Status::OK(), body));
}

void AgentServer::HandleSingle(Session* session, const net::Frame& frame) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  net::MsgType reply_type = net::MsgType::kErrorResponse;
  std::string reply;
  switch (frame.type) {
    case net::MsgType::kHelloRequest:
      HandleHello(session, frame);
      metrics.request_us->Record(static_cast<double>(ElapsedUs(start)));
      return;
    case net::MsgType::kPing:
      // The Pong echoes the Ping payload (token) back verbatim.
      reply_type = net::MsgType::kPong;
      reply = frame.payload;
      break;
    case net::MsgType::kObserveRequest: {
      reply_type = net::MsgType::kObserveResponse;
      if (session->policy == nullptr) {
        reply = EncodeObserveResponse(NoPolicyBound());
        break;
      }
      StatusOr<ObserveRequest> request = DecodeObserveRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeObserveResponse(request.status());
        break;
      }
      if (pool_ != nullptr) {
        pool_->Observe(session->id, std::move(request->transition));
      } else {
        session->policy->Observe(std::move(request->transition));
      }
      reply = EncodeObserveResponse(Status::OK());
      break;
    }
    case net::MsgType::kTrainStepRequest: {
      reply_type = net::MsgType::kTrainStepResponse;
      if (session->policy == nullptr) {
        reply = EncodeTrainStepResponse(NoPolicyBound(), {});
        break;
      }
      StatusOr<TrainStepRequest> request =
          DecodeTrainStepRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeTrainStepResponse(request.status(), {});
        break;
      }
      TrainStepResponse body;
      for (int i = 0; i < request->steps; ++i) {
        body.loss =
            pool_ != nullptr ? pool_->TrainStep() : session->policy->TrainStep();
      }
      reply = EncodeTrainStepResponse(Status::OK(), body);
      break;
    }
    case net::MsgType::kSaveArtifactRequest: {
      reply_type = net::MsgType::kSaveArtifactResponse;
      if (session->policy == nullptr) {
        reply = EncodeSaveArtifactResponse(NoPolicyBound());
        break;
      }
      StatusOr<SaveArtifactRequest> request =
          DecodeSaveArtifactRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeSaveArtifactResponse(request.status());
        break;
      }
      reply = EncodeSaveArtifactResponse(session->policy->Save(request->prefix));
      break;
    }
    default:
      // A response type (or Pong) arriving as a request: protocol misuse.
      reply_type = net::MsgType::kErrorResponse;
      reply = EncodeErrorResponse(Status::InvalidArgument(
          std::string("agent: unexpected request type ") +
          net::MsgTypeName(frame.type)));
      break;
  }
  AppendReply(session, reply_type, reply);
  metrics.request_us->Record(static_cast<double>(ElapsedUs(start)));
}

void AgentServer::ProcessWork(std::vector<WorkItem>* work) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  std::vector<GetItem> batch;
  for (WorkItem& item : *work) {
    Session* session = item.session;
    // After a kill or a framing violation the session takes no further
    // service this iteration.
    if (session->killed || session->draining) continue;
    metrics.requests->Add();
    if (item.is_rx_error) {
      FlushGetBatch(&batch);  // keep outbox append order
      metrics.errors->Add();
      AppendReply(session, net::MsgType::kErrorResponse,
                  EncodeErrorResponse(item.rx_error));
      session->draining = true;
      continue;
    }
    const net::Frame& frame = item.frame;
    if (IsPolicyRpc(frame.type) && options_.max_requests > 0) {
      if (++session->policy_requests > options_.max_requests) {
        // max_requests exhausted: simulate the agent dying mid-run. No
        // reply to this request; already-admitted batch items and the
        // outbox still flush, then the connection closes — exactly the
        // replies the sequential server would have delivered.
        session->killed = true;
        continue;
      }
    }
    if (frame.type == net::MsgType::kGetScheduleRequest) {
      GetItem get;
      get.session = session;
      StatusOr<GetScheduleRequest> request =
          DecodeGetScheduleRequest(frame.payload);
      if (!request.ok()) {
        get.ready = true;
        get.reply = FrameGetScheduleReply(request.status(), {});
      } else {
        get.req = std::move(*request);
        if (session->policy == nullptr) {
          get.ready = true;
          get.reply = FrameGetScheduleReply(NoPolicyBound(), {});
        } else if (get.req.mode == ScheduleMode::kExplore) {
          Status restored = get.rng.DeserializeState(get.req.rng_state);
          if (!restored.ok()) {
            get.ready = true;
            get.reply = FrameGetScheduleReply(restored, {});
          }
        }
      }
      batch.push_back(std::move(get));
      continue;
    }
    // Mutating (or at least non-batchable) request: flush the pending
    // GEMM first so processing order matches sequential serving.
    FlushGetBatch(&batch);
    HandleSingle(session, frame);
  }
  FlushGetBatch(&batch);
}

void AgentServer::AppendReply(Session* session, net::MsgType type,
                              std::string_view payload) {
  session->outbox.push_back(net::EncodeFrame(type, payload));
}

void AgentServer::FlushOutbox(Session* session) {
  // One TrySend per frame: message-oriented transports (loopback) deliver
  // each send as one message, so frame boundaries must survive the flush.
  // Stream transports (TCP) may accept a partial frame; outbox_off tracks
  // the flushed prefix of the front frame until POLLOUT re-arms us.
  while (!session->outbox.empty()) {
    std::string& frame = session->outbox.front();
    const size_t frame_size = frame.size();
    // Untouched frames go down the owned path so a message-oriented
    // transport can move the buffer instead of copying it; the contract
    // guarantees the buffer survives intact unless fully accepted.
    StatusOr<size_t> sent =
        session->outbox_off == 0
            ? session->transport->TrySendOwned(std::move(frame))
            : session->transport->TrySend(
                  std::string_view(frame).substr(session->outbox_off));
    if (!sent.ok()) {
      session->peer_gone = true;
      break;
    }
    if (*sent == 0) break;  // would block; POLLOUT re-arms the flush
    session->outbox_off += *sent;
    if (session->outbox_off >= frame_size) {
      session->outbox.pop_front();
      session->outbox_off = 0;
    }
  }
}

Status AgentServer::Serve(net::Transport* transport) {
  return RunLoop(nullptr, transport, /*exit_when_idle=*/true);
}

Status AgentServer::ServeTcp(net::TcpListener* listener) {
  return RunLoop(listener, nullptr, /*exit_when_idle=*/false);
}

Status AgentServer::Run() {
  return RunLoop(nullptr, nullptr, /*exit_when_idle=*/false);
}

Status AgentServer::RunLoop(net::TcpListener* listener,
                            net::Transport* bootstrap, bool exit_when_idle) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "agent: server event loop already running");
    }
    running_ = true;
  }
  DRLSTREAM_RETURN_NOT_OK(EnsureWakeup());

  // Everything below runs on this (the loop) thread; cleanup closes all
  // sessions so peers see kUnavailable even mid-RPC.
  struct LoopCleanup {
    AgentServer* server;
    ~LoopCleanup() {
      for (auto& [id, session] : server->sessions_) {
        server->CloseSession(&session);
      }
      server->sessions_.clear();
      ServerMetrics::Get().sessions->Set(0.0);
      std::lock_guard<std::mutex> lock(server->mutex_);
      server->running_ = false;
    }
  } cleanup{this};

  if (bootstrap != nullptr) {
    uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      id = ++next_session_id_;
    }
    InstallSession(nullptr, bootstrap, id);
  }

  bool listener_alive = listener != nullptr;
  bool more_buffered = false;
  std::vector<struct pollfd> pfds;
  std::vector<Session*> polled;  // pfds index -> session (or nullptr)
  std::vector<WorkItem> work;

  while (!stop_.load(std::memory_order_acquire)) {
    AdoptPendingSessionsLocked();

    // Exit checks: a bootstrap Serve ends when its (and any added) sessions
    // are gone; ServeTcp ends when the listener is closed and drained.
    bool pending_empty;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_empty = pending_sessions_.empty();
    }
    if (exit_when_idle && sessions_.empty() && pending_empty) break;
    if (listener != nullptr && !listener_alive && sessions_.empty() &&
        pending_empty) {
      break;
    }

    // Build the poll set: wake pipe, listener, then fd-backed sessions.
    // Loopback sessions (readiness_fd < 0) signal through the pipe.
    pfds.clear();
    polled.clear();
    pfds.push_back({wakeup_->fd(), POLLIN, 0});
    polled.push_back(nullptr);
    if (listener_alive) {
      pfds.push_back({listener->readiness_fd(), POLLIN, 0});
      polled.push_back(nullptr);
    }
    for (auto& [id, session] : sessions_) {
      session.revents = 0;
      const int fd = session.transport->readiness_fd();
      if (fd < 0) continue;
      short events = 0;
      if (!session.rx_poisoned && !session.draining && !session.killed &&
          !session.peer_gone) {
        events |= POLLIN;
      }
      if (!session.outbox.empty()) events |= POLLOUT;
      if (events != 0) {
        pfds.push_back({fd, events, 0});
        polled.push_back(&session);
      }
    }
    const int timeout_ms = more_buffered ? 0 : options_.poll_timeout_ms;
    more_buffered = false;
    const int ready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return Status::IoError("agent: poll failed");
    }
    if (ready > 0) {
      for (size_t i = 0; i < pfds.size(); ++i) {
        if (polled[i] != nullptr) polled[i]->revents = pfds[i].revents;
      }
    }
    wakeup_->Drain();

    // Accept everything that is ready; ids are assigned in accept order.
    if (listener_alive) {
      while (true) {
        StatusOr<std::unique_ptr<net::Transport>> conn = listener->Accept(0);
        if (!conn.ok()) {
          const StatusCode code = conn.status().code();
          if (code == StatusCode::kDeadlineExceeded) break;
          if (code == StatusCode::kUnavailable) {
            listener_alive = false;  // closed: serve out existing sessions
            break;
          }
          return conn.status();
        }
        uint64_t id = 0;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          id = ++next_session_id_;
        }
        if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
          (void)(*conn)->Send(net::EncodeFrame(
              net::MsgType::kErrorResponse,
              EncodeErrorResponse(
                  Status::Unavailable("agent: session limit reached"))));
          (*conn)->Close();
          continue;
        }
        InstallSession(std::move(*conn), nullptr, id);
      }
    }

    // Pump sessions with traffic, in canonical (session id) order —
    // iterating the id-ordered map keeps the ordering rule deterministic
    // no matter which subset is ready. Waker-flagged (fd-less transports,
    // fairness-cap carryover) and poll-flagged (fd-backed) sessions only:
    // idle sessions cost one atomic load, not a TryRecv probe.
    work.clear();
    for (auto& [id, session] : sessions_) {
      const bool flagged =
          session.waker != nullptr &&
          session.waker->ready.exchange(false, std::memory_order_acq_rel);
      const bool fd_ready =
          (session.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
      if (flagged || fd_ready) {
        PumpSession(&session, &work, &more_buffered);
      }
    }

    ProcessWork(&work);

    for (auto& [id, session] : sessions_) {
      FlushOutbox(&session);
    }
    ReapDeadSessions();
  }
  return Status::OK();
}

}  // namespace drlstream::ctrl
