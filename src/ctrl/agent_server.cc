#include "ctrl/agent_server.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/rng.h"
#include "ctrl/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace drlstream::ctrl {
namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* connections;
  obs::Histogram* request_us;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return ServerMetrics{registry.counter("ctrl.server.requests"),
                           registry.counter("ctrl.server.errors"),
                           registry.counter("ctrl.server.connections"),
                           registry.histogram("ctrl.server.request_us")};
    }();
    return metrics;
  }
};

/// Whether a message type counts against AgentServerOptions::max_requests
/// (the policy-touching RPCs; handshake and heartbeat are free).
bool IsPolicyRpc(net::MsgType type) {
  switch (type) {
    case net::MsgType::kGetScheduleRequest:
    case net::MsgType::kObserveRequest:
    case net::MsgType::kTrainStepRequest:
    case net::MsgType::kSaveArtifactRequest:
      return true;
    default:
      return false;
  }
}

std::string HandleGetSchedule(const rl::Policy& policy,
                              std::string_view payload) {
  StatusOr<GetScheduleRequest> request = DecodeGetScheduleRequest(payload);
  if (!request.ok()) {
    return EncodeGetScheduleResponse(request.status(), {});
  }
  const GetScheduleRequest& req = *request;
  GetScheduleResponse body;
  sched::Schedule base = DiffBaseFromState(req.state, req.num_machines);
  StatusOr<sched::Schedule> schedule = Status::Internal("unset");
  switch (req.mode) {
    case ScheduleMode::kExplore: {
      Rng rng(0);
      Status restored = rng.DeserializeState(req.rng_state);
      if (!restored.ok()) return EncodeGetScheduleResponse(restored, {});
      StatusOr<rl::PolicyAction> action =
          policy.SelectAction(req.state, req.epsilon, &rng);
      if (!action.ok()) {
        return EncodeGetScheduleResponse(action.status(), {});
      }
      body.move_index = action->move_index;
      body.rng_state = rng.SerializeState();
      schedule = std::move(action->schedule);
      break;
    }
    case ScheduleMode::kGreedy:
      schedule = policy.GreedyAction(req.state);
      break;
    case ScheduleMode::kFinal:
      schedule = policy.FinalSchedule(req.state);
      break;
  }
  if (!schedule.ok()) {
    return EncodeGetScheduleResponse(schedule.status(), {});
  }
  if (schedule->num_executors() != base.num_executors() ||
      schedule->num_machines() != base.num_machines()) {
    return EncodeGetScheduleResponse(
        Status::Internal("agent: policy schedule dimensions do not match "
                         "the request state"),
        {});
  }
  body.diff = MakeScheduleDiff(base, *schedule);
  return EncodeGetScheduleResponse(Status::OK(), body);
}

std::string HandleObserve(rl::Policy* policy, std::string_view payload) {
  StatusOr<ObserveRequest> request = DecodeObserveRequest(payload);
  if (!request.ok()) return EncodeObserveResponse(request.status());
  policy->Observe(std::move(request->transition));
  return EncodeObserveResponse(Status::OK());
}

std::string HandleTrainStep(rl::Policy* policy, std::string_view payload) {
  StatusOr<TrainStepRequest> request = DecodeTrainStepRequest(payload);
  if (!request.ok()) return EncodeTrainStepResponse(request.status(), {});
  TrainStepResponse body;
  for (int i = 0; i < request->steps; ++i) {
    body.loss = policy->TrainStep();
  }
  return EncodeTrainStepResponse(Status::OK(), body);
}

std::string HandleSaveArtifact(const rl::Policy& policy,
                               std::string_view payload) {
  StatusOr<SaveArtifactRequest> request = DecodeSaveArtifactRequest(payload);
  if (!request.ok()) return EncodeSaveArtifactResponse(request.status());
  return EncodeSaveArtifactResponse(policy.Save(request->prefix));
}

}  // namespace

bool AgentServer::HandleFrame(const net::Frame& frame,
                              net::MsgType* reply_type,
                              std::string* reply_payload) {
  if (IsPolicyRpc(frame.type) && options_.max_requests > 0) {
    if (++policy_requests_ > options_.max_requests) return false;
  }
  switch (frame.type) {
    case net::MsgType::kHelloRequest: {
      StatusOr<HelloRequest> request = DecodeHelloRequest(frame.payload);
      *reply_type = net::MsgType::kHelloResponse;
      if (!request.ok()) {
        *reply_payload = EncodeHelloResponse(request.status(), {});
        return true;
      }
      HelloResponse body;
      body.policy_name = policy_->name();
      body.registry_key = policy_->registry_key();
      body.description = policy_->Describe();
      body.trainable = policy_->trainable();
      *reply_payload = EncodeHelloResponse(Status::OK(), body);
      return true;
    }
    case net::MsgType::kPing:
      // The Pong echoes the Ping payload (token) back verbatim.
      *reply_type = net::MsgType::kPong;
      *reply_payload = frame.payload;
      return true;
    case net::MsgType::kGetScheduleRequest:
      *reply_type = net::MsgType::kGetScheduleResponse;
      *reply_payload = HandleGetSchedule(*policy_, frame.payload);
      return true;
    case net::MsgType::kObserveRequest:
      *reply_type = net::MsgType::kObserveResponse;
      *reply_payload = HandleObserve(policy_, frame.payload);
      return true;
    case net::MsgType::kTrainStepRequest:
      *reply_type = net::MsgType::kTrainStepResponse;
      *reply_payload = HandleTrainStep(policy_, frame.payload);
      return true;
    case net::MsgType::kSaveArtifactRequest:
      *reply_type = net::MsgType::kSaveArtifactResponse;
      *reply_payload = HandleSaveArtifact(*policy_, frame.payload);
      return true;
    default:
      // A response type (or Pong) arriving as a request: protocol misuse.
      *reply_type = net::MsgType::kErrorResponse;
      *reply_payload = EncodeErrorResponse(Status::InvalidArgument(
          std::string("agent: unexpected request type ") +
          net::MsgTypeName(frame.type)));
      return true;
  }
}

Status AgentServer::Serve(net::Transport* transport) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<std::string> raw = transport->Recv(options_.poll_timeout_ms);
    if (!raw.ok()) {
      if (raw.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (raw.status().code() == StatusCode::kUnavailable) {
        return Status::OK();  // peer hung up: a normal end of session
      }
      return raw.status();
    }
    auto start = std::chrono::steady_clock::now();
    StatusOr<net::Frame> frame = net::DecodeFrame(*raw);
    metrics.requests->Add();
    if (!frame.ok()) {
      // Un-frameable bytes: reply with the decode error, then hang up —
      // after a framing violation the stream offset can't be trusted.
      metrics.errors->Add();
      std::string reply = net::EncodeFrame(
          net::MsgType::kErrorResponse, EncodeErrorResponse(frame.status()));
      (void)transport->Send(reply);
      transport->Close();
      return Status::OK();
    }
    net::MsgType reply_type = net::MsgType::kErrorResponse;
    std::string reply_payload;
    if (!HandleFrame(*frame, &reply_type, &reply_payload)) {
      // max_requests exhausted: simulate the agent dying mid-run. No
      // reply, just a closed connection the master must degrade around.
      transport->Close();
      return Status::OK();
    }
    DRLSTREAM_RETURN_NOT_OK(
        transport->Send(net::EncodeFrame(reply_type, reply_payload)));
    metrics.request_us->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return Status::OK();
}

Status AgentServer::ServeTcp(net::TcpListener* listener) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<std::unique_ptr<net::Transport>> conn =
        listener->Accept(options_.poll_timeout_ms);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (conn.status().code() == StatusCode::kUnavailable) {
        return Status::OK();  // listener closed: clean shutdown
      }
      return conn.status();
    }
    metrics.connections->Add();
    Status served = Serve(conn->get());
    (*conn)->Close();
    DRLSTREAM_RETURN_NOT_OK(served);
  }
  return Status::OK();
}

}  // namespace drlstream::ctrl
