#include "ctrl/agent_server.h"

#include <poll.h>

#include <chrono>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "ctrl/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace drlstream::ctrl {
namespace {

struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::Counter* connections;
  obs::Histogram* request_us;
  obs::Gauge* sessions;
  obs::Histogram* batch_size;
  obs::Histogram* queue_depth;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return ServerMetrics{registry.counter("ctrl.server.requests"),
                           registry.counter("ctrl.server.errors"),
                           registry.counter("ctrl.server.connections"),
                           registry.histogram("ctrl.server.request_us"),
                           registry.gauge("ctrl.server.sessions"),
                           registry.histogram("ctrl.server.batch_size"),
                           registry.histogram("ctrl.server.queue_depth")};
    }();
    return metrics;
  }
};

/// Per-session aggregates (summed over sessions; the per-session split
/// lives in SessionStats and is served by /statusz).
struct SessionAggMetrics {
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* opened;
  obs::Counter* closed;
  obs::Counter* peer_gone;
  obs::Counter* rx_poisoned;
  obs::Counter* killed;
  obs::Counter* slow_rpcs;
  obs::Histogram* queue_wait_us;
  obs::Histogram* batch_width;
  obs::Histogram* outbox_depth;

  static const SessionAggMetrics& Get() {
    static const SessionAggMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return SessionAggMetrics{
          registry.counter("ctrl.server.session.bytes_in"),
          registry.counter("ctrl.server.session.bytes_out"),
          registry.counter("ctrl.server.session.opened"),
          registry.counter("ctrl.server.session.closed"),
          registry.counter("ctrl.server.session.peer_gone"),
          registry.counter("ctrl.server.session.rx_poisoned"),
          registry.counter("ctrl.server.session.killed"),
          registry.counter("ctrl.server.slow_rpcs"),
          registry.histogram("ctrl.server.session.queue_wait_us"),
          registry.histogram("ctrl.server.session.batch_width"),
          registry.histogram("ctrl.server.session.outbox_depth")};
    }();
    return metrics;
  }
};

/// Renders the args object for a server-side request span. trace/span ids
/// print as decimal (Python's json parses them back exactly; they exceed
/// double precision but the merge script works on the parsed ints).
std::string SpanArgs(net::TraceContext trace, uint64_t session_id,
                     int batch_width, double queue_wait_us) {
  std::string args = "{\"trace_id\": " + std::to_string(trace.trace_id) +
                     ", \"parent_span\": " + std::to_string(trace.span_id) +
                     ", \"session\": " + std::to_string(session_id) +
                     ", \"batch\": " + std::to_string(batch_width);
  if (queue_wait_us >= 0.0) {
    args += ", \"queue_wait_us\": " +
            std::to_string(static_cast<int64_t>(queue_wait_us));
  }
  return args + "}";
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Whether a message type counts against AgentServerOptions::max_requests
/// (the policy-touching RPCs; handshake and heartbeat are free).
bool IsPolicyRpc(net::MsgType type) {
  switch (type) {
    case net::MsgType::kGetScheduleRequest:
    case net::MsgType::kObserveRequest:
    case net::MsgType::kTrainStepRequest:
    case net::MsgType::kSaveArtifactRequest:
      return true;
    default:
      return false;
  }
}

Status NoPolicyBound() {
  return Status::FailedPrecondition(
      "agent: no policy bound to this session; send Hello with a valid "
      "policy key first");
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// A GetSchedule request parked until the batch flush. Keeping every
/// GetSchedule (explore, greedy, final, even ones that already failed to
/// decode) in the batch — instead of flushing on the non-batchable modes —
/// preserves per-session reply order for free: replies are emitted in batch
/// order, and batch order is arrival order. Only kExplore items actually
/// share a GEMM; greedy/final are const policy calls, so computing them at
/// flush time is order-indifferent.
struct AgentServer::GetItem {
  Session* session = nullptr;
  GetScheduleRequest req;
  Rng rng = Rng::Unseeded();  // restored exploration stream (kExplore)
  rl::PolicyAction action;  // batched SelectAction result (kExplore)
  Status action_status;     // per-slot status from SelectActionBatch
  std::string reply;        // fully framed response, when `ready`
  bool ready = false;       // reply decided without consulting the policy
  net::TraceContext trace;  // request envelope, echoed on the reply
  uint16_t version = net::kWireVersion;  // request frame's wire version
  double recv_us = 0.0;     // receive stamp (0 when obs was off)
  int batch_width = 1;      // fused GEMM width this item was served in
};

namespace {

/// Encodes a GetScheduleResponse directly as a wire frame (header +
/// payload in one buffer): this is the reply the server emits once per
/// schedule, so it skips the payload-into-frame copy EncodeFrame makes.
std::string FrameGetScheduleReply(const Status& status,
                                  const GetScheduleResponse& body,
                                  uint16_t version, net::TraceContext trace) {
  net::WireWriter writer;
  const size_t frame_start = net::BeginFrameAs(
      net::MsgType::kGetScheduleResponse, version, trace, &writer);
  EncodeGetScheduleResponseTo(status, body, &writer);
  net::EndFrame(frame_start, &writer);
  return writer.Release();
}

}  // namespace

AgentServer::AgentServer(rl::Policy* policy, AgentServerOptions options)
    : shared_policy_(policy),
      pool_(std::make_unique<ExperiencePool>(policy)),
      options_(options) {}

AgentServer::AgentServer(const rl::PolicyContext* context,
                         std::string default_key, AgentServerOptions options)
    : context_(context),
      default_key_(std::move(default_key)),
      options_(options) {}

AgentServer::~AgentServer() { Stop(); }

void AgentServer::Stop() {
  stop_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  if (wakeup_) wakeup_->Wake();
}

void AgentServer::RequestStop() {
  stop_.store(true, std::memory_order_release);
  // WakeupPipe::Wake is an atomic exchange plus at most one write(2), both
  // async-signal-safe; the raw mirror avoids mutex_ (which the loop thread
  // may hold when the signal lands).
  net::WakeupPipe* wakeup = wakeup_raw_.load(std::memory_order_acquire);
  if (wakeup != nullptr) wakeup->Wake();
}

Status AgentServer::EnsureWakeup() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wakeup_) {
    DRLSTREAM_ASSIGN_OR_RETURN(wakeup_, net::WakeupPipe::Create());
    wakeup_raw_.store(wakeup_.get(), std::memory_order_release);
  }
  return Status::OK();
}

StatusOr<uint64_t> AgentServer::AddSession(
    std::unique_ptr<net::Transport> transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("agent: AddSession with null transport");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = ++next_session_id_;
  pending_sessions_.emplace_back(id, std::move(transport));
  if (wakeup_) wakeup_->Wake();
  return id;
}

uint64_t AgentServer::InstallSession(std::unique_ptr<net::Transport> owned,
                                     net::Transport* borrowed, uint64_t id) {
  Session session;
  session.id = id;
  session.owned = std::move(owned);
  session.transport = borrowed != nullptr ? borrowed : session.owned.get();
  session.policy = shared_policy_;  // nullptr in registry mode until Hello
  Session& installed = sessions_[id];
  installed = std::move(session);
  // Transports without a pollable fd (loopback) wake the loop through the
  // per-session flag + pipe. The waker is born ready and the self-wake
  // covers frames that were already buffered before the registration
  // (they'd otherwise sit out one full poll timeout).
  installed.waker = std::make_unique<SessionWaker>(wakeup_.get());
  installed.transport->SetReadyWaker(installed.waker.get());
  wakeup_->Wake();
  ++sessions_opened_;
  if (obs::MetricsEnabled() || obs::TraceEnabled() || http_ != nullptr) {
    installed.stats.created_us = obs::Tracer::Get().NowUs();
  }
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.connections->Add();
  metrics.sessions->Set(static_cast<double>(sessions_.size()));
  SessionAggMetrics::Get().opened->Add();
  return id;
}

void AgentServer::AdoptPendingSessionsLocked() {
  std::deque<std::pair<uint64_t, std::unique_ptr<net::Transport>>> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending.swap(pending_sessions_);
  }
  for (auto& [id, transport] : pending) {
    if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
      (void)transport->Send(net::EncodeFrame(
          net::MsgType::kErrorResponse,
          EncodeErrorResponse(
              Status::Unavailable("agent: session limit reached"))));
      transport->Close();
      continue;
    }
    InstallSession(std::move(transport), nullptr, id);
  }
}

bool AgentServer::SessionDead(const Session& session) const {
  if (session.peer_gone) return true;
  return (session.killed || session.draining) && session.outbox.empty();
}

void AgentServer::CloseSession(Session* session) {
  session->transport->SetReadyWaker(nullptr);
  session->transport->Close();
}

void AgentServer::ReapDeadSessions() {
  const SessionAggMetrics& agg = SessionAggMetrics::Get();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (SessionDead(it->second)) {
      const Session& session = it->second;
      agg.closed->Add();
      if (session.peer_gone) agg.peer_gone->Add();
      if (session.rx_poisoned) agg.rx_poisoned->Add();
      if (session.killed) agg.killed->Add();
      CloseSession(&it->second);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  ServerMetrics::Get().sessions->Set(static_cast<double>(sessions_.size()));
}

void AgentServer::PumpSession(Session* session, std::vector<WorkItem>* work,
                              bool* more_buffered) {
  if (session->rx_poisoned || session->draining || session->killed ||
      session->peer_gone) {
    return;
  }
  // One clock read per received frame, but only when something consumes
  // it (tracing, metrics, slow-rpc logging, or the live status page);
  // otherwise receiving stays free of clock syscalls.
  const bool stamp = obs::MetricsEnabled() || obs::TraceEnabled() ||
                     options_.slow_rpc_ms > 0.0 || http_ != nullptr;
  int pumped = 0;
  while (pumped < options_.max_frames_per_session_per_iteration) {
    StatusOr<std::string> raw = session->transport->TryRecv();
    if (!raw.ok()) {
      const StatusCode code = raw.status().code();
      if (code == StatusCode::kDeadlineExceeded) break;  // nothing buffered
      if (code == StatusCode::kUnavailable) {
        // Peer hung up; frames already pumped still get processed.
        session->peer_gone = true;
        break;
      }
      // Framing violation: the stream offset can't be trusted any more.
      // The error reply slots in *after* this session's valid frames.
      session->rx_poisoned = true;
      work->push_back(WorkItem{session, net::Frame{}, true, raw.status()});
      break;
    }
    session->stats.bytes_in += static_cast<int64_t>(raw->size());
    SessionAggMetrics::Get().bytes_in->Add(
        static_cast<int64_t>(raw->size()));
    StatusOr<net::Frame> frame = net::DecodeFrame(std::move(*raw));
    if (!frame.ok()) {
      session->rx_poisoned = true;
      work->push_back(WorkItem{session, net::Frame{}, true, frame.status()});
      break;
    }
    if (frame->version > options_.max_wire_version) {
      // Mimic an older binary exactly: reject before looking at the body,
      // poison the stream, and name the ceiling so a newer client can
      // redo its Hello at the lower version.
      session->rx_poisoned = true;
      work->push_back(WorkItem{
          session, net::Frame{}, true,
          Status::InvalidArgument(
              "wire: unsupported protocol version " +
              std::to_string(frame->version) + " (speaking " +
              std::to_string(net::kWireMinVersion) + ".." +
              std::to_string(options_.max_wire_version) + ")")});
      break;
    }
    session->wire_version = frame->version;
    WorkItem item{session, std::move(*frame), false, Status::OK()};
    if (stamp) {
      item.recv_us = obs::Tracer::Get().NowUs();
      session->stats.last_activity_us = item.recv_us;
    }
    work->push_back(std::move(item));
    ++pumped;
  }
  if (pumped >= options_.max_frames_per_session_per_iteration) {
    *more_buffered = true;  // fairness cap hit: re-poll with zero timeout
    // Frames may remain buffered in the transport (not the kernel), so
    // poll alone would not re-schedule this session; flag it directly.
    if (session->waker != nullptr) {
      session->waker->ready.store(true, std::memory_order_release);
    }
  }
  if (pumped > 0) {
    ServerMetrics::Get().queue_depth->Record(static_cast<double>(pumped));
  }
}

void AgentServer::FlushGetBatch(std::vector<GetItem>* batch) {
  if (batch->empty()) return;
  const ServerMetrics& metrics = ServerMetrics::Get();
  const SessionAggMetrics& agg = SessionAggMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = obs::TraceEnabled();
  const bool timing = tracing || options_.slow_rpc_ms > 0.0;
  const double flush_start_us = timing ? obs::Tracer::Get().NowUs() : 0.0;

  // Fuse the kExplore slots, grouped by policy instance in first-appearance
  // order. Per-session policies make these groups of one; the shared-policy
  // server turns the whole run into a single ForwardBatch GEMM.
  std::vector<rl::Policy*> policies;
  for (const GetItem& item : *batch) {
    if (item.ready || item.req.mode != ScheduleMode::kExplore) continue;
    bool seen = false;
    for (rl::Policy* policy : policies) seen |= (policy == item.session->policy);
    if (!seen) policies.push_back(item.session->policy);
  }
  std::vector<GetItem*> group;
  std::vector<rl::DecisionRequest> slots;
  for (rl::Policy* policy : policies) {
    group.clear();
    slots.clear();
    for (GetItem& item : *batch) {
      if (item.ready || item.req.mode != ScheduleMode::kExplore) continue;
      if (item.session->policy != policy) continue;
      group.push_back(&item);
      rl::DecisionRequest slot;
      slot.state = &item.req.state;
      slot.epsilon = item.req.epsilon;
      slot.rng = &item.rng;
      slot.out = &item.action;
      slots.push_back(slot);
    }
    if (options_.batch_inference) {
      policy->SelectActionBatch(slots.data(), static_cast<int>(slots.size()));
    } else {
      // The sequential reference path; bit-identical by the
      // SelectActionBatch contract (tests pin this).
      for (rl::DecisionRequest& slot : slots) {
        slot.status =
            policy->SelectActionInto(*slot.state, slot.epsilon, slot.rng,
                                     slot.out);
      }
    }
    metrics.batch_size->Record(static_cast<double>(slots.size()));
    agg.batch_width->Record(static_cast<double>(slots.size()));
    const int width = static_cast<int>(slots.size());
    for (size_t i = 0; i < group.size(); ++i) {
      group[i]->action_status = slots[i].status;
      group[i]->batch_width = width;
      SessionStats& stats = group[i]->session->stats;
      if (width > 1) ++stats.batched_requests;
      if (width > stats.max_batch_width) stats.max_batch_width = width;
    }
  }

  // Emit replies in arrival order (this is what keeps per-session reply
  // order intact). Greedy/final are const policy calls: computing them
  // here, after the explore GEMM, cannot change any result.
  for (GetItem& item : *batch) {
    if (!item.ready) {
      const int base_executors =
          static_cast<int>(item.req.state.assignments.size());
      const bool explore = item.req.mode == ScheduleMode::kExplore;
      StatusOr<sched::Schedule> schedule = Status::Internal("unset");
      switch (item.req.mode) {
        case ScheduleMode::kExplore:
          if (item.action_status.ok()) {
            schedule = std::move(item.action.schedule);
          } else {
            schedule = item.action_status;
          }
          break;
        case ScheduleMode::kGreedy:
          schedule = item.session->policy->GreedyAction(item.req.state);
          break;
        case ScheduleMode::kFinal:
          schedule = item.session->policy->FinalSchedule(item.req.state);
          break;
      }
      if (!schedule.ok()) {
        item.reply = FrameGetScheduleReply(schedule.status(), {}, item.version,
                                           item.trace);
      } else if (schedule->num_executors() != base_executors ||
                 schedule->num_machines() != item.req.num_machines) {
        item.reply = FrameGetScheduleReply(
            Status::Internal("agent: policy schedule dimensions do not "
                             "match the request state"),
            {}, item.version, item.trace);
      } else if (explore) {
        // The hot path: diff + advanced RNG, encoded straight into the
        // frame buffer (no GetScheduleResponse body, no 2.5 KiB rng_state
        // string). Byte-identical to the generic encoder.
        net::WireWriter writer;
        const size_t frame_start = net::BeginFrameAs(
            net::MsgType::kGetScheduleResponse, item.version, item.trace,
            &writer);
        EncodeExploreScheduleResponseTo(
            MakeScheduleDiffFromState(item.req.state, *schedule),
            item.action.move_index, item.rng, &writer);
        net::EndFrame(frame_start, &writer);
        item.reply = writer.Release();
      } else {
        GetScheduleResponse body;
        body.diff = MakeScheduleDiffFromState(item.req.state, *schedule);
        item.reply = FrameGetScheduleReply(Status::OK(), body, item.version,
                                           item.trace);
      }
    }
    item.session->stats.bytes_out += static_cast<int64_t>(item.reply.size());
    agg.bytes_out->Add(static_cast<int64_t>(item.reply.size()));
    if (timing) {
      const double end_us = obs::Tracer::Get().NowUs();
      const double queue_wait_us =
          item.recv_us > 0.0 ? flush_start_us - item.recv_us : -1.0;
      if (queue_wait_us >= 0.0) agg.queue_wait_us->Record(queue_wait_us);
      if (tracing) {
        const double start_us =
            item.recv_us > 0.0 ? item.recv_us : flush_start_us;
        obs::Tracer::Get().AddWallSpan(
            "agent.GetSchedule", start_us, end_us,
            SpanArgs(item.trace, item.session->id, item.batch_width,
                     queue_wait_us));
      }
      MaybeLogSlowRpc(*item.session, net::MsgType::kGetScheduleRequest,
                      item.trace, item.recv_us, end_us);
    }
    // `reply` is already a complete frame (FrameGetScheduleReply); hand it
    // to the outbox as-is.
    item.session->outbox.push_back(std::move(item.reply));
  }
  const int64_t per_item_us =
      ElapsedUs(start) / static_cast<int64_t>(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    metrics.request_us->Record(static_cast<double>(per_item_us));
  }
  batch->clear();
}

void AgentServer::HandleHello(Session* session, const net::Frame& frame) {
  StatusOr<HelloRequest> request = DecodeHelloRequest(frame.payload);
  if (!request.ok()) {
    AppendReply(session, net::MsgType::kHelloResponse,
                EncodeHelloResponse(request.status(), {}), frame.version,
                frame.trace);
    return;
  }
  session->stats.client_name = request->client_name;
  if (session->policy == nullptr) {
    // Registry mode, first Hello: bind this session's own policy instance.
    const std::string& key =
        request->policy_key.empty() ? default_key_ : request->policy_key;
    StatusOr<std::unique_ptr<rl::Policy>> created =
        rl::PolicyRegistry::Get().Create(key, *context_);
    if (!created.ok()) {
      AppendReply(session, net::MsgType::kHelloResponse,
                  EncodeHelloResponse(created.status(), {}), frame.version,
                  frame.trace);
      return;
    }
    session->owned_policy = std::move(*created);
    session->policy = session->owned_policy.get();
  }
  session->stats.policy_key = session->policy->registry_key();
  // A repeated Hello re-describes the bound policy; it never rebinds (the
  // session would lose its learned weights mid-run).
  HelloResponse body;
  body.policy_name = session->policy->name();
  body.registry_key = session->policy->registry_key();
  body.description = session->policy->Describe();
  body.trainable = session->policy->trainable();
  body.session_id = session->id;
  AppendReply(session, net::MsgType::kHelloResponse,
              EncodeHelloResponse(Status::OK(), body), frame.version,
              frame.trace);
}

void AgentServer::HandleSingle(Session* session, const net::Frame& frame,
                               double recv_us) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = obs::TraceEnabled();
  const bool timing = tracing || options_.slow_rpc_ms > 0.0;
  net::MsgType reply_type = net::MsgType::kErrorResponse;
  std::string reply;
  switch (frame.type) {
    case net::MsgType::kHelloRequest:
      HandleHello(session, frame);
      metrics.request_us->Record(static_cast<double>(ElapsedUs(start)));
      if (timing) {
        const double end_us = obs::Tracer::Get().NowUs();
        if (tracing && recv_us > 0.0) {
          obs::Tracer::Get().AddWallSpan(
              "agent.Hello", recv_us, end_us,
              SpanArgs(frame.trace, session->id, 1, -1.0));
        }
        MaybeLogSlowRpc(*session, frame.type, frame.trace, recv_us, end_us);
      }
      return;
    case net::MsgType::kPing: {
      // The Pong echoes the token back, stamped with the server's receive
      // and transmit times (tracer-epoch us) so the client can estimate
      // the clock offset. A payload the extended decoder rejects is echoed
      // verbatim, exactly as before.
      reply_type = net::MsgType::kPong;
      StatusOr<PingMessage> ping = DecodePingMessage(frame.payload);
      if (ping.ok()) {
        ping->server_recv_us =
            recv_us > 0.0 ? recv_us : obs::Tracer::Get().NowUs();
        ping->server_send_us = obs::Tracer::Get().NowUs();
        reply = EncodePingMessage(*ping);
      } else {
        reply = frame.payload;
      }
      break;
    }
    case net::MsgType::kObserveRequest: {
      reply_type = net::MsgType::kObserveResponse;
      if (session->policy == nullptr) {
        reply = EncodeObserveResponse(NoPolicyBound());
        break;
      }
      StatusOr<ObserveRequest> request = DecodeObserveRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeObserveResponse(request.status());
        break;
      }
      if (pool_ != nullptr) {
        pool_->Observe(session->id, std::move(request->transition));
      } else {
        session->policy->Observe(std::move(request->transition));
      }
      reply = EncodeObserveResponse(Status::OK());
      break;
    }
    case net::MsgType::kTrainStepRequest: {
      reply_type = net::MsgType::kTrainStepResponse;
      if (session->policy == nullptr) {
        reply = EncodeTrainStepResponse(NoPolicyBound(), {});
        break;
      }
      StatusOr<TrainStepRequest> request =
          DecodeTrainStepRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeTrainStepResponse(request.status(), {});
        break;
      }
      TrainStepResponse body;
      for (int i = 0; i < request->steps; ++i) {
        body.loss =
            pool_ != nullptr ? pool_->TrainStep() : session->policy->TrainStep();
      }
      reply = EncodeTrainStepResponse(Status::OK(), body);
      break;
    }
    case net::MsgType::kSaveArtifactRequest: {
      reply_type = net::MsgType::kSaveArtifactResponse;
      if (session->policy == nullptr) {
        reply = EncodeSaveArtifactResponse(NoPolicyBound());
        break;
      }
      StatusOr<SaveArtifactRequest> request =
          DecodeSaveArtifactRequest(frame.payload);
      if (!request.ok()) {
        reply = EncodeSaveArtifactResponse(request.status());
        break;
      }
      reply = EncodeSaveArtifactResponse(session->policy->Save(request->prefix));
      break;
    }
    default:
      // A response type (or Pong) arriving as a request: protocol misuse.
      reply_type = net::MsgType::kErrorResponse;
      reply = EncodeErrorResponse(Status::InvalidArgument(
          std::string("agent: unexpected request type ") +
          net::MsgTypeName(frame.type)));
      break;
  }
  AppendReply(session, reply_type, reply, frame.version, frame.trace);
  metrics.request_us->Record(static_cast<double>(ElapsedUs(start)));
  if (timing) {
    const double end_us = obs::Tracer::Get().NowUs();
    if (tracing && recv_us > 0.0) {
      obs::Tracer::Get().AddWallSpan(
          std::string("agent.") + net::MsgTypeName(frame.type), recv_us,
          end_us, SpanArgs(frame.trace, session->id, 1, -1.0));
    }
    MaybeLogSlowRpc(*session, frame.type, frame.trace, recv_us, end_us);
  }
}

void AgentServer::ProcessWork(std::vector<WorkItem>* work) {
  const ServerMetrics& metrics = ServerMetrics::Get();
  std::vector<GetItem> batch;
  for (WorkItem& item : *work) {
    Session* session = item.session;
    // After a kill or a framing violation the session takes no further
    // service this iteration.
    if (session->killed || session->draining) continue;
    metrics.requests->Add();
    if (item.is_rx_error) {
      FlushGetBatch(&batch);  // keep outbox append order
      metrics.errors->Add();
      // No decoded frame to echo an envelope from: reply at the session's
      // last good wire version with a zero trace context.
      AppendReply(session, net::MsgType::kErrorResponse,
                  EncodeErrorResponse(item.rx_error), session->wire_version,
                  net::TraceContext{});
      session->draining = true;
      continue;
    }
    const net::Frame& frame = item.frame;
    ++session->stats.requests;
    switch (frame.type) {
      case net::MsgType::kGetScheduleRequest:
        ++session->stats.get_schedules;
        break;
      case net::MsgType::kObserveRequest:
        ++session->stats.observes;
        break;
      case net::MsgType::kTrainStepRequest:
        ++session->stats.train_steps;
        break;
      default:
        break;
    }
    if (IsPolicyRpc(frame.type) && options_.max_requests > 0) {
      if (++session->policy_requests > options_.max_requests) {
        // max_requests exhausted: simulate the agent dying mid-run. No
        // reply to this request; already-admitted batch items and the
        // outbox still flush, then the connection closes — exactly the
        // replies the sequential server would have delivered.
        session->killed = true;
        continue;
      }
    }
    if (frame.type == net::MsgType::kGetScheduleRequest) {
      GetItem get;
      get.session = session;
      get.trace = frame.trace;
      get.version = frame.version;
      get.recv_us = item.recv_us;
      StatusOr<GetScheduleRequest> request =
          DecodeGetScheduleRequest(frame.payload);
      if (!request.ok()) {
        get.ready = true;
        get.reply = FrameGetScheduleReply(request.status(), {}, get.version,
                                          get.trace);
      } else {
        get.req = std::move(*request);
        if (session->policy == nullptr) {
          get.ready = true;
          get.reply = FrameGetScheduleReply(NoPolicyBound(), {}, get.version,
                                            get.trace);
        } else if (get.req.mode == ScheduleMode::kExplore) {
          Status restored = get.rng.DeserializeState(get.req.rng_state);
          if (!restored.ok()) {
            get.ready = true;
            get.reply = FrameGetScheduleReply(restored, {}, get.version,
                                              get.trace);
          }
        }
      }
      batch.push_back(std::move(get));
      continue;
    }
    // Mutating (or at least non-batchable) request: flush the pending
    // GEMM first so processing order matches sequential serving.
    FlushGetBatch(&batch);
    HandleSingle(session, frame, item.recv_us);
  }
  FlushGetBatch(&batch);
}

void AgentServer::AppendReply(Session* session, net::MsgType type,
                              std::string_view payload, uint16_t version,
                              net::TraceContext trace) {
  std::string reply = version >= net::kWireVersionV3
                          ? net::EncodeFrameV3(type, trace, payload)
                          : net::EncodeFrame(type, payload);
  session->stats.bytes_out += static_cast<int64_t>(reply.size());
  SessionAggMetrics::Get().bytes_out->Add(static_cast<int64_t>(reply.size()));
  session->outbox.push_back(std::move(reply));
}

void AgentServer::FlushOutbox(Session* session) {
  if (!session->outbox.empty() && obs::MetricsEnabled()) {
    SessionAggMetrics::Get().outbox_depth->Record(
        static_cast<double>(session->outbox.size()));
  }
  // One TrySend per frame: message-oriented transports (loopback) deliver
  // each send as one message, so frame boundaries must survive the flush.
  // Stream transports (TCP) may accept a partial frame; outbox_off tracks
  // the flushed prefix of the front frame until POLLOUT re-arms us.
  while (!session->outbox.empty()) {
    std::string& frame = session->outbox.front();
    const size_t frame_size = frame.size();
    // Untouched frames go down the owned path so a message-oriented
    // transport can move the buffer instead of copying it; the contract
    // guarantees the buffer survives intact unless fully accepted.
    StatusOr<size_t> sent =
        session->outbox_off == 0
            ? session->transport->TrySendOwned(std::move(frame))
            : session->transport->TrySend(
                  std::string_view(frame).substr(session->outbox_off));
    if (!sent.ok()) {
      session->peer_gone = true;
      break;
    }
    if (*sent == 0) break;  // would block; POLLOUT re-arms the flush
    session->outbox_off += *sent;
    if (session->outbox_off >= frame_size) {
      session->outbox.pop_front();
      session->outbox_off = 0;
    }
  }
}

void AgentServer::MaybeLogSlowRpc(const Session& session, net::MsgType type,
                                  net::TraceContext trace, double recv_us,
                                  double end_us) {
  if (options_.slow_rpc_ms <= 0.0 || recv_us <= 0.0) return;
  const double took_ms = (end_us - recv_us) / 1000.0;
  if (took_ms <= options_.slow_rpc_ms) return;
  SessionAggMetrics::Get().slow_rpcs->Add();
  DRLSTREAM_LOG(kWarning) << "agent: slow rpc " << net::MsgTypeName(type)
                          << " session=" << session.id
                          << " trace_id=" << trace.trace_id << " took "
                          << took_ms << " ms (threshold "
                          << options_.slow_rpc_ms << " ms)";
}

std::string AgentServer::StatuszJson() const {
  std::ostringstream out;
  out << "{\"uptime_us\": "
      << static_cast<int64_t>(obs::Tracer::Get().NowUs())
      << ", \"mode\": \""
      << (shared_policy_ != nullptr ? "shared" : "registry")
      << "\", \"sessions_active\": " << sessions_.size()
      << ", \"sessions_total\": " << sessions_opened_
      << ", \"sessions\": [";
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    if (!first) out << ", ";
    first = false;
    const SessionStats& stats = session.stats;
    const char* state = "active";
    if (session.peer_gone) state = "peer_gone";
    else if (session.rx_poisoned) state = "rx_poisoned";
    else if (session.killed) state = "killed";
    else if (session.draining) state = "draining";
    out << "{\"id\": " << id << ", \"client\": \""
        << JsonEscape(stats.client_name) << "\", \"policy_key\": \""
        << JsonEscape(stats.policy_key) << "\", \"wire_version\": "
        << session.wire_version << ", \"state\": \"" << state
        << "\", \"requests\": " << stats.requests
        << ", \"get_schedules\": " << stats.get_schedules
        << ", \"observes\": " << stats.observes
        << ", \"train_steps\": " << stats.train_steps
        << ", \"bytes_in\": " << stats.bytes_in
        << ", \"bytes_out\": " << stats.bytes_out
        << ", \"outbox_frames\": " << session.outbox.size()
        << ", \"batched_requests\": " << stats.batched_requests
        << ", \"max_batch_width\": " << stats.max_batch_width
        << ", \"created_us\": " << static_cast<int64_t>(stats.created_us)
        << ", \"last_activity_us\": "
        << static_cast<int64_t>(stats.last_activity_us) << "}";
  }
  out << "]}";
  return out.str();
}

StatusOr<int> AgentServer::BindHttp() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "agent: BindHttp must run before the event loop starts");
    }
  }
  if (http_ != nullptr) {
    return Status::FailedPrecondition("agent: HTTP endpoint already bound");
  }
  if (options_.http_port < 0) {
    return Status::InvalidArgument(
        "agent: BindHttp with http_port < 0 (endpoint disabled)");
  }
  DRLSTREAM_ASSIGN_OR_RETURN(
      http_, HttpIntrospect::Bind(options_.http_host, options_.http_port));
  return http_->port();
}

Status AgentServer::Serve(net::Transport* transport) {
  return RunLoop(nullptr, transport, /*exit_when_idle=*/true);
}

Status AgentServer::ServeTcp(net::TcpListener* listener) {
  return RunLoop(listener, nullptr, /*exit_when_idle=*/false);
}

Status AgentServer::Run() {
  return RunLoop(nullptr, nullptr, /*exit_when_idle=*/false);
}

Status AgentServer::RunLoop(net::TcpListener* listener,
                            net::Transport* bootstrap, bool exit_when_idle) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "agent: server event loop already running");
    }
    running_ = true;
  }
  DRLSTREAM_RETURN_NOT_OK(EnsureWakeup());
  if (http_ == nullptr && options_.http_port >= 0) {
    DRLSTREAM_ASSIGN_OR_RETURN(
        http_, HttpIntrospect::Bind(options_.http_host, options_.http_port));
  }
  // The introspection handler runs on this thread (between poll()s), so it
  // reads sessions_ and the metrics registry without locks.
  const HttpIntrospect::Handler http_handler =
      [this](const std::string& path) -> HttpResponse {
    if (path == "/metrics") {
      return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                          obs::ToPrometheusText(
                              obs::MetricsRegistry::Get().Snapshot())};
    }
    if (path == "/statusz") {
      return HttpResponse{200, "application/json", StatuszJson()};
    }
    if (path == "/") {
      return HttpResponse{200, "text/plain; charset=utf-8",
                          "drlstream agent server\n/metrics  Prometheus "
                          "exposition\n/statusz  JSON session table\n"};
    }
    return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  };

  // Everything below runs on this (the loop) thread; cleanup closes all
  // sessions so peers see kUnavailable even mid-RPC.
  struct LoopCleanup {
    AgentServer* server;
    ~LoopCleanup() {
      for (auto& [id, session] : server->sessions_) {
        server->CloseSession(&session);
      }
      server->sessions_.clear();
      ServerMetrics::Get().sessions->Set(0.0);
      std::lock_guard<std::mutex> lock(server->mutex_);
      server->running_ = false;
    }
  } cleanup{this};

  if (bootstrap != nullptr) {
    uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      id = ++next_session_id_;
    }
    InstallSession(nullptr, bootstrap, id);
  }

  bool listener_alive = listener != nullptr;
  bool more_buffered = false;
  std::vector<struct pollfd> pfds;
  std::vector<Session*> polled;  // pfds index -> session (or nullptr)
  std::vector<WorkItem> work;

  while (!stop_.load(std::memory_order_acquire)) {
    AdoptPendingSessionsLocked();

    // Exit checks: a bootstrap Serve ends when its (and any added) sessions
    // are gone; ServeTcp ends when the listener is closed and drained.
    bool pending_empty;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_empty = pending_sessions_.empty();
    }
    if (exit_when_idle && sessions_.empty() && pending_empty) break;
    if (listener != nullptr && !listener_alive && sessions_.empty() &&
        pending_empty) {
      break;
    }

    // Build the poll set: wake pipe, listener, then fd-backed sessions.
    // Loopback sessions (readiness_fd < 0) signal through the pipe.
    pfds.clear();
    polled.clear();
    pfds.push_back({wakeup_->fd(), POLLIN, 0});
    polled.push_back(nullptr);
    if (listener_alive) {
      pfds.push_back({listener->readiness_fd(), POLLIN, 0});
      polled.push_back(nullptr);
    }
    for (auto& [id, session] : sessions_) {
      session.revents = 0;
      const int fd = session.transport->readiness_fd();
      if (fd < 0) continue;
      short events = 0;
      if (!session.rx_poisoned && !session.draining && !session.killed &&
          !session.peer_gone) {
        events |= POLLIN;
      }
      if (!session.outbox.empty()) events |= POLLOUT;
      if (events != 0) {
        pfds.push_back({fd, events, 0});
        polled.push_back(&session);
      }
    }
    const size_t http_first = pfds.size();
    const size_t http_count = http_ != nullptr ? http_->AppendPollFds(&pfds) : 0;
    polled.resize(polled.size() + http_count, nullptr);
    const int timeout_ms = more_buffered ? 0 : options_.poll_timeout_ms;
    more_buffered = false;
    const int ready =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      return Status::IoError("agent: poll failed");
    }
    if (ready > 0) {
      for (size_t i = 0; i < pfds.size(); ++i) {
        if (polled[i] != nullptr) polled[i]->revents = pfds[i].revents;
      }
      if (http_count > 0) {
        http_->OnPollResults(pfds.data() + http_first, http_count,
                             http_handler);
      }
    }
    wakeup_->Drain();

    // Accept everything that is ready; ids are assigned in accept order.
    if (listener_alive) {
      while (true) {
        StatusOr<std::unique_ptr<net::Transport>> conn = listener->Accept(0);
        if (!conn.ok()) {
          const StatusCode code = conn.status().code();
          if (code == StatusCode::kDeadlineExceeded) break;
          if (code == StatusCode::kUnavailable) {
            listener_alive = false;  // closed: serve out existing sessions
            break;
          }
          return conn.status();
        }
        uint64_t id = 0;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          id = ++next_session_id_;
        }
        if (static_cast<int>(sessions_.size()) >= options_.max_sessions) {
          (void)(*conn)->Send(net::EncodeFrame(
              net::MsgType::kErrorResponse,
              EncodeErrorResponse(
                  Status::Unavailable("agent: session limit reached"))));
          (*conn)->Close();
          continue;
        }
        InstallSession(std::move(*conn), nullptr, id);
      }
    }

    // Pump sessions with traffic, in canonical (session id) order —
    // iterating the id-ordered map keeps the ordering rule deterministic
    // no matter which subset is ready. Waker-flagged (fd-less transports,
    // fairness-cap carryover) and poll-flagged (fd-backed) sessions only:
    // idle sessions cost one atomic load, not a TryRecv probe.
    work.clear();
    for (auto& [id, session] : sessions_) {
      const bool flagged =
          session.waker != nullptr &&
          session.waker->ready.exchange(false, std::memory_order_acq_rel);
      const bool fd_ready =
          (session.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
      if (flagged || fd_ready) {
        PumpSession(&session, &work, &more_buffered);
      }
    }

    ProcessWork(&work);

    for (auto& [id, session] : sessions_) {
      FlushOutbox(&session);
    }
    ReapDeadSessions();
  }
  return Status::OK();
}

}  // namespace drlstream::ctrl
