#include "ctrl/messages.h"

namespace drlstream::ctrl {
namespace {

using net::WireReader;
using net::WireWriter;

constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(
    StatusCode::kUnavailable);
constexpr uint8_t kMaxScheduleMode =
    static_cast<uint8_t>(ScheduleMode::kFinal);

void PutStatus(const Status& status, WireWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutString(status.message());
}

Status ReadStatus(WireReader* reader, Status* out) {
  uint8_t code = 0;
  std::string message;
  DRLSTREAM_RETURN_NOT_OK(reader->ReadU8(&code));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadString(&message));
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("ctrl: unknown status code " +
                                   std::to_string(code));
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

/// Finishes a decode: the payload must be fully consumed.
template <typename T>
StatusOr<T> Finish(const WireReader& reader, T value) {
  DRLSTREAM_RETURN_NOT_OK(reader.ExpectFullyConsumed());
  return value;
}

}  // namespace

/// ---- Shared sub-codecs --------------------------------------------------

void EncodeState(const rl::State& state, WireWriter* writer) {
  writer->PutIntVector(state.assignments);
  writer->PutDoubleVector(state.spout_rates);
  writer->PutByteVector(state.machine_up);
}

Status DecodeState(WireReader* reader, rl::State* out) {
  rl::State state;
  DRLSTREAM_RETURN_NOT_OK(reader->ReadIntVector(&state.assignments));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadDoubleVector(&state.spout_rates));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadByteVector(&state.machine_up));
  for (uint8_t up : state.machine_up) {
    if (up > 1) {
      return Status::InvalidArgument("ctrl: machine_up flag not 0/1");
    }
  }
  *out = std::move(state);
  return Status::OK();
}

void EncodeTransition(const rl::Transition& transition, WireWriter* writer) {
  EncodeState(transition.state, writer);
  writer->PutIntVector(transition.action_assignments);
  writer->PutI32(transition.move_index);
  writer->PutDouble(transition.reward);
  EncodeState(transition.next_state, writer);
}

Status DecodeTransition(WireReader* reader, rl::Transition* out) {
  rl::Transition transition;
  DRLSTREAM_RETURN_NOT_OK(DecodeState(reader, &transition.state));
  DRLSTREAM_RETURN_NOT_OK(
      reader->ReadIntVector(&transition.action_assignments));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&transition.move_index));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadDouble(&transition.reward));
  DRLSTREAM_RETURN_NOT_OK(DecodeState(reader, &transition.next_state));
  *out = std::move(transition);
  return Status::OK();
}

void EncodeScheduleDiff(const ScheduleDiff& diff, WireWriter* writer) {
  writer->PutI32(diff.num_executors);
  writer->PutI32(diff.num_machines);
  writer->PutU32(static_cast<uint32_t>(diff.entries.size()));
  // One 12-byte append per entry, not three 4-byte ones: a full-topology
  // diff carries dozens of entries and each Put re-checks capacity.
  for (const ScheduleDiffEntry& entry : diff.entries) {
    char buf[12];
    const uint32_t fields[3] = {static_cast<uint32_t>(entry.executor),
                                static_cast<uint32_t>(entry.machine),
                                static_cast<uint32_t>(entry.process)};
    for (int f = 0; f < 3; ++f) {
      for (int i = 0; i < 4; ++i) {
        buf[4 * f + i] = static_cast<char>((fields[f] >> (8 * i)) & 0xFF);
      }
    }
    writer->PutBytes(buf, sizeof(buf));
  }
}

Status DecodeScheduleDiff(WireReader* reader, ScheduleDiff* out) {
  ScheduleDiff diff;
  DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&diff.num_executors));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&diff.num_machines));
  uint32_t count = 0;
  DRLSTREAM_RETURN_NOT_OK(reader->ReadU32(&count));
  if (count > net::kMaxVectorElements ||
      static_cast<size_t>(count) * 12 > reader->remaining()) {
    return Status::OutOfRange("ctrl: schedule diff entry count " +
                              std::to_string(count) +
                              " does not fit the payload");
  }
  diff.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScheduleDiffEntry entry;
    DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&entry.executor));
    DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&entry.machine));
    DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&entry.process));
    diff.entries.push_back(entry);
  }
  *out = std::move(diff);
  return Status::OK();
}

void EncodeSchedule(const sched::Schedule& schedule, WireWriter* writer) {
  writer->PutI32(schedule.num_machines());
  writer->PutIntVector(schedule.assignments());
  writer->PutU32(static_cast<uint32_t>(schedule.num_executors()));
  for (int i = 0; i < schedule.num_executors(); ++i) {
    writer->PutI32(schedule.ProcessOf(i));
  }
}

StatusOr<sched::Schedule> DecodeSchedule(WireReader* reader) {
  int32_t num_machines = 0;
  std::vector<int> assignments;
  std::vector<int> processes;
  DRLSTREAM_RETURN_NOT_OK(reader->ReadI32(&num_machines));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadIntVector(&assignments));
  DRLSTREAM_RETURN_NOT_OK(reader->ReadIntVector(&processes));
  if (num_machines <= 0) {
    return Status::InvalidArgument("ctrl: schedule machine count " +
                                   std::to_string(num_machines));
  }
  if (processes.size() != assignments.size()) {
    return Status::InvalidArgument(
        "ctrl: schedule process list size mismatch");
  }
  DRLSTREAM_ASSIGN_OR_RETURN(
      sched::Schedule schedule,
      sched::Schedule::FromAssignments(std::move(assignments),
                                       num_machines));
  for (int i = 0; i < schedule.num_executors(); ++i) {
    if (processes[i] < 0) {
      return Status::InvalidArgument("ctrl: negative process index");
    }
    schedule.AssignProcess(i, processes[i]);
  }
  return schedule;
}

/// ---- Diff helpers -------------------------------------------------------

sched::Schedule DiffBaseFromState(const rl::State& state, int num_machines) {
  sched::Schedule base(static_cast<int>(state.assignments.size()),
                       num_machines);
  for (size_t i = 0; i < state.assignments.size(); ++i) {
    base.Assign(static_cast<int>(i), state.assignments[i]);
  }
  return base;
}

ScheduleDiff MakeScheduleDiff(const sched::Schedule& base,
                              const sched::Schedule& target) {
  ScheduleDiff diff;
  diff.num_executors = target.num_executors();
  diff.num_machines = target.num_machines();
  for (int i = 0; i < target.num_executors(); ++i) {
    if (i >= base.num_executors() ||
        base.MachineOf(i) != target.MachineOf(i) ||
        base.ProcessOf(i) != target.ProcessOf(i)) {
      diff.entries.push_back(
          ScheduleDiffEntry{i, target.MachineOf(i), target.ProcessOf(i)});
    }
  }
  return diff;
}

ScheduleDiff MakeScheduleDiffFromState(const rl::State& state,
                                       const sched::Schedule& target) {
  ScheduleDiff diff;
  diff.num_executors = target.num_executors();
  diff.num_machines = target.num_machines();
  const std::vector<int>& base = state.assignments;
  for (int i = 0; i < target.num_executors(); ++i) {
    // The implicit base has executor i on base[i], process 0.
    if (i >= static_cast<int>(base.size()) ||
        base[i] != target.MachineOf(i) || target.ProcessOf(i) != 0) {
      diff.entries.push_back(
          ScheduleDiffEntry{i, target.MachineOf(i), target.ProcessOf(i)});
    }
  }
  return diff;
}

StatusOr<sched::Schedule> ApplyScheduleDiff(const sched::Schedule& base,
                                            const ScheduleDiff& diff) {
  if (diff.num_executors != base.num_executors() ||
      diff.num_machines != base.num_machines()) {
    return Status::InvalidArgument(
        "ctrl: schedule diff dimensions " +
        std::to_string(diff.num_executors) + "x" +
        std::to_string(diff.num_machines) + " do not match the base " +
        std::to_string(base.num_executors()) + "x" +
        std::to_string(base.num_machines()));
  }
  sched::Schedule schedule = base;
  for (const ScheduleDiffEntry& entry : diff.entries) {
    if (entry.executor < 0 || entry.executor >= base.num_executors()) {
      return Status::OutOfRange("ctrl: diff executor " +
                                std::to_string(entry.executor) +
                                " out of range");
    }
    if (entry.machine < 0 || entry.machine >= base.num_machines()) {
      return Status::OutOfRange("ctrl: diff machine " +
                                std::to_string(entry.machine) +
                                " out of range");
    }
    if (entry.process < 0) {
      return Status::OutOfRange("ctrl: negative diff process");
    }
    schedule.Assign(entry.executor, entry.machine);
    schedule.AssignProcess(entry.executor, entry.process);
  }
  return schedule;
}

/// ---- Requests -----------------------------------------------------------

std::string EncodeHelloRequest(const HelloRequest& msg) {
  WireWriter writer;
  writer.PutString(msg.client_name);
  writer.PutString(msg.policy_key);
  return writer.Release();
}

StatusOr<HelloRequest> DecodeHelloRequest(std::string_view payload) {
  WireReader reader(payload);
  HelloRequest msg;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&msg.client_name));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&msg.policy_key));
  return Finish(reader, std::move(msg));
}

std::string EncodeGetScheduleRequest(const GetScheduleRequest& msg) {
  WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(msg.mode));
  writer.PutI32(msg.num_machines);
  EncodeState(msg.state, &writer);
  writer.PutDouble(msg.epsilon);
  writer.PutString(msg.rng_state);
  return writer.Release();
}

StatusOr<GetScheduleRequest> DecodeGetScheduleRequest(
    std::string_view payload) {
  WireReader reader(payload);
  GetScheduleRequest msg;
  uint8_t mode = 0;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadU8(&mode));
  if (mode > kMaxScheduleMode) {
    return Status::InvalidArgument("ctrl: unknown schedule mode " +
                                   std::to_string(mode));
  }
  msg.mode = static_cast<ScheduleMode>(mode);
  DRLSTREAM_RETURN_NOT_OK(reader.ReadI32(&msg.num_machines));
  if (msg.num_machines <= 0) {
    return Status::InvalidArgument("ctrl: machine count " +
                                   std::to_string(msg.num_machines));
  }
  DRLSTREAM_RETURN_NOT_OK(DecodeState(&reader, &msg.state));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadDouble(&msg.epsilon));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&msg.rng_state));
  for (int assignment : msg.state.assignments) {
    if (assignment < 0 || assignment >= msg.num_machines) {
      return Status::OutOfRange("ctrl: state assignment " +
                                std::to_string(assignment) +
                                " outside " +
                                std::to_string(msg.num_machines) +
                                " machines");
    }
  }
  return Finish(reader, std::move(msg));
}

std::string EncodeObserveRequest(const ObserveRequest& msg) {
  WireWriter writer;
  EncodeTransition(msg.transition, &writer);
  return writer.Release();
}

StatusOr<ObserveRequest> DecodeObserveRequest(std::string_view payload) {
  WireReader reader(payload);
  ObserveRequest msg;
  DRLSTREAM_RETURN_NOT_OK(DecodeTransition(&reader, &msg.transition));
  return Finish(reader, std::move(msg));
}

std::string EncodeTrainStepRequest(const TrainStepRequest& msg) {
  WireWriter writer;
  writer.PutI32(msg.steps);
  return writer.Release();
}

StatusOr<TrainStepRequest> DecodeTrainStepRequest(std::string_view payload) {
  WireReader reader(payload);
  TrainStepRequest msg;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadI32(&msg.steps));
  if (msg.steps <= 0 || msg.steps > 1 << 20) {
    return Status::InvalidArgument("ctrl: train step count " +
                                   std::to_string(msg.steps));
  }
  return Finish(reader, std::move(msg));
}

std::string EncodeSaveArtifactRequest(const SaveArtifactRequest& msg) {
  WireWriter writer;
  writer.PutString(msg.prefix);
  return writer.Release();
}

StatusOr<SaveArtifactRequest> DecodeSaveArtifactRequest(
    std::string_view payload) {
  WireReader reader(payload);
  SaveArtifactRequest msg;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&msg.prefix));
  if (msg.prefix.empty()) {
    return Status::InvalidArgument("ctrl: empty artifact prefix");
  }
  return Finish(reader, std::move(msg));
}

std::string EncodePingMessage(const PingMessage& msg) {
  WireWriter writer;
  writer.PutU64(msg.token);
  writer.PutDouble(msg.server_recv_us);
  writer.PutDouble(msg.server_send_us);
  return writer.Release();
}

StatusOr<PingMessage> DecodePingMessage(std::string_view payload) {
  WireReader reader(payload);
  PingMessage msg;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadU64(&msg.token));
  // All fields are mandatory (every strict prefix must fail, like the rest
  // of the protocol). A pre-timestamp peer's token-only Ping fails here on
  // purpose: the server then falls back to echoing the payload verbatim —
  // exactly the old Pong — so the token round-trip still works.
  DRLSTREAM_RETURN_NOT_OK(reader.ReadDouble(&msg.server_recv_us));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadDouble(&msg.server_send_us));
  return Finish(reader, std::move(msg));
}

/// ---- Responses ----------------------------------------------------------

std::string EncodeHelloResponse(const Status& status,
                                const HelloResponse& body) {
  WireWriter writer;
  PutStatus(status, &writer);
  if (status.ok()) {
    writer.PutString(body.policy_name);
    writer.PutString(body.registry_key);
    writer.PutString(body.description);
    writer.PutBool(body.trainable);
    writer.PutU64(body.session_id);
  }
  return writer.Release();
}

StatusOr<HelloResponse> DecodeHelloResponse(std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  if (!remote.ok()) return remote;
  HelloResponse body;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&body.policy_name));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&body.registry_key));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&body.description));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadBool(&body.trainable));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadU64(&body.session_id));
  return Finish(reader, std::move(body));
}

void EncodeGetScheduleResponseTo(const Status& status,
                                 const GetScheduleResponse& body,
                                 WireWriter* writer) {
  // Hot path (one per GetSchedule): size the buffer up front — the
  // serialized RNG alone is ~2.5 KiB, and growing to it through the ~100
  // small Puts below costs several reallocs.
  writer->Reserve(64 + 12 * body.diff.entries.size() +
                  body.rng_state.size());
  PutStatus(status, writer);
  if (status.ok()) {
    EncodeScheduleDiff(body.diff, writer);
    writer->PutI32(body.move_index);
    writer->PutString(body.rng_state);
  }
}

std::string EncodeGetScheduleResponse(const Status& status,
                                      const GetScheduleResponse& body) {
  WireWriter writer;
  EncodeGetScheduleResponseTo(status, body, &writer);
  return writer.Release();
}

void EncodeExploreScheduleResponseTo(const ScheduleDiff& diff,
                                     int32_t move_index, const Rng& rng,
                                     WireWriter* writer) {
  writer->Reserve(64 + 12 * diff.entries.size() +
                  Rng::kSerializedStateBytes);
  PutStatus(Status::OK(), writer);
  EncodeScheduleDiff(diff, writer);
  writer->PutI32(move_index);
  writer->PutU32(static_cast<uint32_t>(Rng::kSerializedStateBytes));
  rng.SerializeStateTo(writer->mutable_buffer());
}

StatusOr<GetScheduleResponse> DecodeGetScheduleResponse(
    std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  if (!remote.ok()) return remote;
  GetScheduleResponse body;
  DRLSTREAM_RETURN_NOT_OK(DecodeScheduleDiff(&reader, &body.diff));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadI32(&body.move_index));
  DRLSTREAM_RETURN_NOT_OK(reader.ReadString(&body.rng_state));
  return Finish(reader, std::move(body));
}

std::string EncodeObserveResponse(const Status& status) {
  WireWriter writer;
  PutStatus(status, &writer);
  return writer.Release();
}

Status DecodeObserveResponse(std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  DRLSTREAM_RETURN_NOT_OK(reader.ExpectFullyConsumed());
  return remote;
}

std::string EncodeTrainStepResponse(const Status& status,
                                    const TrainStepResponse& body) {
  WireWriter writer;
  PutStatus(status, &writer);
  if (status.ok()) writer.PutDouble(body.loss);
  return writer.Release();
}

StatusOr<TrainStepResponse> DecodeTrainStepResponse(
    std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  if (!remote.ok()) return remote;
  TrainStepResponse body;
  DRLSTREAM_RETURN_NOT_OK(reader.ReadDouble(&body.loss));
  return Finish(reader, std::move(body));
}

std::string EncodeSaveArtifactResponse(const Status& status) {
  WireWriter writer;
  PutStatus(status, &writer);
  return writer.Release();
}

Status DecodeSaveArtifactResponse(std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  DRLSTREAM_RETURN_NOT_OK(reader.ExpectFullyConsumed());
  return remote;
}

std::string EncodeErrorResponse(const Status& status) {
  WireWriter writer;
  PutStatus(status.ok() ? Status::Internal("unspecified remote error")
                        : status,
            &writer);
  return writer.Release();
}

Status DecodeErrorResponse(std::string_view payload) {
  WireReader reader(payload);
  Status remote;
  DRLSTREAM_RETURN_NOT_OK(ReadStatus(&reader, &remote));
  DRLSTREAM_RETURN_NOT_OK(reader.ExpectFullyConsumed());
  if (remote.ok()) {
    return Status::InvalidArgument("ctrl: error response claims OK");
  }
  return remote;
}

}  // namespace drlstream::ctrl
