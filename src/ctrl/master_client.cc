#include "ctrl/master_client.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "net/tcp.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace drlstream::ctrl {
namespace {

struct ClientMetrics {
  obs::Counter* rpcs;
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* failures;
  obs::Counter* reconnects;
  obs::Counter* heartbeats;
  obs::Histogram* rpc_us;
  obs::Gauge* clock_offset_us;
  obs::Histogram* ping_rtt_us;

  static const ClientMetrics& Get() {
    static const ClientMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return ClientMetrics{registry.counter("ctrl.client.rpcs"),
                           registry.counter("ctrl.client.retries"),
                           registry.counter("ctrl.client.timeouts"),
                           registry.counter("ctrl.client.failures"),
                           registry.counter("ctrl.client.reconnects"),
                           registry.counter("ctrl.client.heartbeats"),
                           registry.histogram("ctrl.client.rpc_us"),
                           registry.gauge("ctrl.client.clock_offset_us"),
                           registry.histogram("ctrl.client.ping_rtt_us")};
    }();
    return metrics;
  }
};

/// Args object for a client-side RPC span. The server span carries the same
/// trace_id and names this span's span_id as parent_span — that pair is the
/// join key scripts/merge_traces.py nests on.
std::string ClientSpanArgs(net::TraceContext trace, uint64_t session_id) {
  return "{\"trace_id\": " + std::to_string(trace.trace_id) +
         ", \"span_id\": " + std::to_string(trace.span_id) +
         ", \"session\": " + std::to_string(session_id) + "}";
}

/// Frames a request at the session's negotiated wire version.
std::string FrameRequest(net::MsgType type, uint16_t version,
                         net::TraceContext trace, const std::string& payload) {
  return version >= net::kWireVersionV3
             ? net::EncodeFrameV3(type, trace, payload)
             : net::EncodeFrame(type, payload);
}

}  // namespace

MasterClient::MasterClient(std::unique_ptr<net::Transport> transport,
                           MasterClientOptions options)
    : owns_endpoint_(false),
      options_(options),
      transport_(std::move(transport)) {}

MasterClient::MasterClient(std::string host, int port,
                           MasterClientOptions options)
    : host_(std::move(host)),
      port_(port),
      owns_endpoint_(true),
      options_(options) {}

MasterClient::~MasterClient() {
  StopHeartbeat();
  Shutdown();
}

void MasterClient::Shutdown() {
  StopHeartbeat();
  std::lock_guard<std::mutex> lock(mutex_);
  DropConnectionLocked();
}

void MasterClient::DropConnectionLocked() const {
  if (transport_) {
    transport_->Close();
    transport_.reset();
  }
  handshaken_ = false;
  wire_version_ = 0;  // re-negotiated on the next Hello (version_cap_ stays)
}

uint16_t MasterClient::HandshakeVersionLocked() const {
  if (options_.wire_version != 0) return options_.wire_version;
  if (version_cap_ != 0) return version_cap_;
  return obs::TraceEnabled() ? net::kWireVersionV3 : net::kWireVersion;
}

Status MasterClient::HelloLocked(uint16_t version) const {
  HelloRequest request;
  request.client_name = options_.client_name;
  request.policy_key = options_.policy_key;
  const bool tracing = obs::TraceEnabled();
  net::TraceContext trace;
  if (version >= net::kWireVersionV3) {
    if (trace_id_ == 0) trace_id_ = obs::NewSpanId();
    trace.trace_id = trace_id_;
    trace.span_id = obs::NewSpanId();
  }
  const double start_us = tracing ? obs::Tracer::Get().NowUs() : 0.0;
  DRLSTREAM_RETURN_NOT_OK(
      transport_->Send(FrameRequest(net::MsgType::kHelloRequest, version,
                                    trace, EncodeHelloRequest(request))));
  DRLSTREAM_ASSIGN_OR_RETURN(std::string raw,
                             transport_->Recv(options_.rpc_deadline_ms));
  DRLSTREAM_ASSIGN_OR_RETURN(net::Frame frame,
                             net::DecodeFrame(std::move(raw)));
  if (frame.type == net::MsgType::kErrorResponse) {
    // Surface the server's own words: a version rejection ("unsupported
    // protocol version ...") triggers the auto-downgrade in
    // EnsureConnectedLocked.
    return DecodeErrorResponse(frame.payload);
  }
  if (frame.type != net::MsgType::kHelloResponse) {
    return Status::Internal(std::string("ctrl: handshake got ") +
                            net::MsgTypeName(frame.type));
  }
  DRLSTREAM_ASSIGN_OR_RETURN(hello_, DecodeHelloResponse(frame.payload));
  handshaken_ = true;
  wire_version_ = version;
  if (tracing) {
    obs::Tracer::Get().AddWallSpan("rpc.Hello", start_us,
                                   obs::Tracer::Get().NowUs(),
                                   ClientSpanArgs(trace, hello_.session_id));
  }
  return Status::OK();
}

Status MasterClient::EnsureConnectedLocked() const {
  // Two passes at most: the second exists solely for the v3 -> v2
  // downgrade, which must redial (a rejecting server poisons the session).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!transport_) {
      if (!owns_endpoint_) {
        return Status::Unavailable(
            "ctrl: agent connection closed (transport-wrapping client cannot "
            "reconnect)");
      }
      DRLSTREAM_ASSIGN_OR_RETURN(
          transport_,
          net::TcpConnect(host_, port_, options_.connect_timeout_ms));
      ClientMetrics::Get().reconnects->Add();
    }
    if (handshaken_) return Status::OK();
    const uint16_t version = HandshakeVersionLocked();
    Status hello = HelloLocked(version);
    if (hello.ok()) return Status::OK();
    const bool version_rejected =
        hello.message().find("unsupported protocol version") !=
        std::string::npos;
    if (attempt == 0 && version_rejected && options_.wire_version == 0 &&
        version >= net::kWireVersionV3 && owns_endpoint_) {
      version_cap_ = net::kWireVersion;
      DropConnectionLocked();
      continue;
    }
    return hello;
  }
  return Status::Internal("ctrl: handshake retry exhausted");
}

StatusOr<std::string> MasterClient::CallOnceLocked(
    net::MsgType request_type, const std::string& payload,
    net::MsgType response_type) const {
  const uint16_t version =
      wire_version_ != 0 ? wire_version_ : net::kWireVersion;
  const bool tracing = obs::TraceEnabled();
  net::TraceContext trace;
  if (version >= net::kWireVersionV3) {
    if (trace_id_ == 0) trace_id_ = obs::NewSpanId();
    trace.trace_id = trace_id_;
    trace.span_id = obs::NewSpanId();
  }
  const double start_us = tracing ? obs::Tracer::Get().NowUs() : 0.0;
  DRLSTREAM_RETURN_NOT_OK(transport_->Send(
      FrameRequest(request_type, version, trace, payload)));
  DRLSTREAM_ASSIGN_OR_RETURN(std::string raw,
                             transport_->Recv(options_.rpc_deadline_ms));
  DRLSTREAM_ASSIGN_OR_RETURN(net::Frame frame, net::DecodeFrame(raw));
  if (tracing) {
    obs::Tracer::Get().AddWallSpan(
        std::string("rpc.") + net::MsgTypeName(request_type), start_us,
        obs::Tracer::Get().NowUs(),
        ClientSpanArgs(trace, hello_.session_id));
  }
  if (frame.type == net::MsgType::kErrorResponse) {
    // The server could not make sense of the request. Coherent framing, so
    // the connection survives; the error itself is not retryable.
    return DecodeErrorResponse(frame.payload);
  }
  if (frame.type != response_type) {
    return Status::Internal(std::string("ctrl: expected ") +
                            net::MsgTypeName(response_type) + ", got " +
                            net::MsgTypeName(frame.type));
  }
  return std::move(frame.payload);
}

StatusOr<std::string> MasterClient::Call(net::MsgType request_type,
                                         const std::string& payload,
                                         net::MsgType response_type) const {
  const ClientMetrics& metrics = ClientMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  metrics.rpcs->Add();
  Status last = Status::Unavailable("ctrl: rpc never attempted");
  const int attempts =
      options_.max_rpc_attempts > 0 ? options_.max_rpc_attempts : 1;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      metrics.retries->Add();
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.retry_backoff_ms * attempt));
    }
    Status connected = EnsureConnectedLocked();
    if (!connected.ok()) {
      last = connected;
      DropConnectionLocked();
      if (!owns_endpoint_) break;  // nothing to re-dial
      continue;
    }
    auto start = std::chrono::steady_clock::now();
    StatusOr<std::string> result =
        CallOnceLocked(request_type, payload, response_type);
    if (result.ok()) {
      metrics.rpc_us->Record(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      return result;
    }
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics.timeouts->Add();
    }
    // Any failure here means the request/response stream can no longer be
    // trusted (timeout replies may arrive late, framing may be skewed):
    // drop the connection before the next attempt.
    last = result.status();
    DropConnectionLocked();
    if (!owns_endpoint_) break;
  }
  metrics.failures->Add();
  return last;
}

HelloResponse MasterClient::remote_info() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hello_;
}

Status MasterClient::Connect() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status connected = EnsureConnectedLocked();
  if (!connected.ok()) DropConnectionLocked();
  return connected;
}

Status MasterClient::Ping() {
  const ClientMetrics& metrics = ClientMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  Status connected = EnsureConnectedLocked();
  if (!connected.ok()) {
    DropConnectionLocked();
    return connected;
  }
  PingMessage ping;
  ping.token = ++ping_token_;
  const double t0 = obs::Tracer::Get().NowUs();
  StatusOr<std::string> pong = CallOnceLocked(
      net::MsgType::kPing, EncodePingMessage(ping), net::MsgType::kPong);
  const double t3 = obs::Tracer::Get().NowUs();
  if (!pong.ok()) {
    DropConnectionLocked();
    return pong.status();
  }
  StatusOr<PingMessage> echoed = DecodePingMessage(*pong);
  if (!echoed.ok()) return echoed.status();
  if (echoed->token != ping.token) {
    DropConnectionLocked();
    return Status::Internal("ctrl: pong token mismatch");
  }
  if (echoed->server_recv_us > 0.0 && echoed->server_send_us > 0.0) {
    // NTP's two-sample estimate: offset = ((t1-t0) + (t2-t3)) / 2, where
    // t1/t2 are the server's receive/transmit stamps. Keep the estimate
    // from the fastest round trip seen — symmetric delay is least wrong
    // there — so one slow Ping cannot wreck a good alignment.
    const double t1 = echoed->server_recv_us;
    const double t2 = echoed->server_send_us;
    const double rtt_us = (t3 - t0) - (t2 - t1);
    const double offset_us = ((t1 - t0) + (t2 - t3)) / 2.0;
    if (!has_offset_ || rtt_us < best_rtt_us_) {
      has_offset_ = true;
      best_rtt_us_ = rtt_us;
      clock_offset_us_ = offset_us;
      metrics.clock_offset_us->Set(offset_us);
      if (obs::TraceEnabled()) {
        obs::Tracer::Get().AddWallInstant(
            "clock_offset", t3,
            "{\"offset_us\": " + std::to_string(offset_us) +
                ", \"rtt_us\": " + std::to_string(rtt_us) + "}");
      }
    }
    metrics.ping_rtt_us->Record(rtt_us);
  }
  metrics.heartbeats->Add();
  return Status::OK();
}

StatusOr<double> MasterClient::EstimatedClockOffsetUs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!has_offset_) {
    return Status::FailedPrecondition(
        "ctrl: no clock-offset estimate yet (Ping a server that stamps "
        "Pongs first)");
  }
  return clock_offset_us_;
}

uint16_t MasterClient::wire_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wire_version_;
}

Status MasterClient::StartHeartbeat() {
  if (options_.heartbeat_interval_ms <= 0) {
    return Status::FailedPrecondition(
        "ctrl: heartbeat_interval_ms must be > 0 to start a heartbeat");
  }
  std::lock_guard<std::mutex> lock(heartbeat_mutex_);
  if (heartbeat_thread_.joinable()) {
    return Status::FailedPrecondition("ctrl: heartbeat already running");
  }
  heartbeat_stop_ = false;
  heartbeat_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(heartbeat_mutex_);
    while (!heartbeat_stop_) {
      if (heartbeat_cv_.wait_for(
              lock,
              std::chrono::milliseconds(options_.heartbeat_interval_ms),
              [this] { return heartbeat_stop_; })) {
        break;
      }
      lock.unlock();
      // A failed heartbeat just drops the connection; the next RPC (or
      // heartbeat) redials. Failures already count in ctrl.client metrics.
      (void)Ping();
      lock.lock();
    }
  });
  return Status::OK();
}

void MasterClient::StopHeartbeat() {
  {
    std::lock_guard<std::mutex> lock(heartbeat_mutex_);
    if (!heartbeat_thread_.joinable()) return;
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  heartbeat_thread_.join();
  heartbeat_thread_ = std::thread();
}

/// ---- rl::Policy ---------------------------------------------------------

std::string MasterClient::name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return handshaken_ ? hello_.policy_name : "remote-agent";
}

std::string MasterClient::Describe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string where =
      owns_endpoint_ ? host_ + ":" + std::to_string(port_) : "transport";
  if (!handshaken_) return "remote agent at " + where;
  return "remote agent at " + where + " serving " + hello_.description;
}

bool MasterClient::trainable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!handshaken_ && !EnsureConnectedLocked().ok()) {
    DropConnectionLocked();
    return false;
  }
  return hello_.trainable;
}

int MasterClient::NumMachinesFor(const rl::State& state) const {
  if (options_.num_machines > 0) return options_.num_machines;
  return static_cast<int>(state.machine_up.size());
}

StatusOr<GetScheduleResponse> MasterClient::GetSchedule(
    GetScheduleRequest request) const {
  if (request.num_machines <= 0) {
    return Status::FailedPrecondition(
        "ctrl: machine count unknown; set MasterClientOptions.num_machines");
  }
  DRLSTREAM_ASSIGN_OR_RETURN(
      std::string payload,
      Call(net::MsgType::kGetScheduleRequest,
           EncodeGetScheduleRequest(request),
           net::MsgType::kGetScheduleResponse));
  return DecodeGetScheduleResponse(payload);
}

StatusOr<rl::PolicyAction> MasterClient::SelectAction(const rl::State& state,
                                                      double epsilon,
                                                      Rng* rng) const {
  GetScheduleRequest request;
  request.mode = ScheduleMode::kExplore;
  request.num_machines = NumMachinesFor(state);
  request.state = state;
  request.epsilon = epsilon;
  request.rng_state = rng->SerializeState();
  DRLSTREAM_ASSIGN_OR_RETURN(GetScheduleResponse response,
                             GetSchedule(std::move(request)));
  // Adopt the agent's advanced RNG so the master's exploration stream stays
  // bit-identical to an in-process run.
  DRLSTREAM_RETURN_NOT_OK(rng->DeserializeState(response.rng_state));
  DRLSTREAM_ASSIGN_OR_RETURN(
      sched::Schedule schedule,
      ApplyScheduleDiff(DiffBaseFromState(state, NumMachinesFor(state)),
                        response.diff));
  return rl::PolicyAction(std::move(schedule), response.move_index);
}

StatusOr<sched::Schedule> MasterClient::GreedyAction(
    const rl::State& state) const {
  GetScheduleRequest request;
  request.mode = ScheduleMode::kGreedy;
  request.num_machines = NumMachinesFor(state);
  request.state = state;
  DRLSTREAM_ASSIGN_OR_RETURN(GetScheduleResponse response,
                             GetSchedule(std::move(request)));
  return ApplyScheduleDiff(DiffBaseFromState(state, NumMachinesFor(state)),
                           response.diff);
}

StatusOr<sched::Schedule> MasterClient::FinalSchedule(
    const rl::State& state) const {
  GetScheduleRequest request;
  request.mode = ScheduleMode::kFinal;
  request.num_machines = NumMachinesFor(state);
  request.state = state;
  DRLSTREAM_ASSIGN_OR_RETURN(GetScheduleResponse response,
                             GetSchedule(std::move(request)));
  return ApplyScheduleDiff(DiffBaseFromState(state, NumMachinesFor(state)),
                           response.diff);
}

void MasterClient::Observe(rl::Transition transition) {
  ObserveRequest request;
  request.transition = std::move(transition);
  StatusOr<std::string> payload =
      Call(net::MsgType::kObserveRequest, EncodeObserveRequest(request),
           net::MsgType::kObserveResponse);
  Status status =
      payload.ok() ? DecodeObserveResponse(*payload) : payload.status();
  if (!status.ok()) {
    // Observe is fire-and-forget in the Policy contract; a lost sample only
    // thins the replay buffer. Failures are already counted.
    std::fprintf(stderr, "[ctrl] Observe dropped: %s\n",
                 status.ToString().c_str());
  }
}

double MasterClient::TrainStep() {
  TrainStepRequest request;
  StatusOr<std::string> payload =
      Call(net::MsgType::kTrainStepRequest, EncodeTrainStepRequest(request),
           net::MsgType::kTrainStepResponse);
  if (!payload.ok()) return 0.0;
  StatusOr<TrainStepResponse> response = DecodeTrainStepResponse(*payload);
  return response.ok() ? response->loss : 0.0;
}

Status MasterClient::Save(const std::string& prefix) const {
  SaveArtifactRequest request;
  request.prefix = prefix;
  DRLSTREAM_ASSIGN_OR_RETURN(
      std::string payload,
      Call(net::MsgType::kSaveArtifactRequest,
           EncodeSaveArtifactRequest(request),
           net::MsgType::kSaveArtifactResponse));
  return DecodeSaveArtifactResponse(payload);
}

}  // namespace drlstream::ctrl
