#ifndef DRLSTREAM_CTRL_MASTER_CLIENT_H_
#define DRLSTREAM_CTRL_MASTER_CLIENT_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "ctrl/messages.h"
#include "net/transport.h"
#include "rl/policy.h"

namespace drlstream::ctrl {

struct MasterClientOptions {
  /// Per-RPC response deadline. A timed-out RPC closes the connection (a
  /// late reply would desynchronize the request/response stream) and, when
  /// the client owns an endpoint, reconnects on the next attempt.
  int rpc_deadline_ms = 5000;
  int connect_timeout_ms = 2000;
  /// Attempts per RPC (1 = no retry). Only transport failures retry;
  /// an error *returned by the remote policy* is a valid answer and is
  /// handed to the caller unchanged.
  int max_rpc_attempts = 3;
  /// Wall-clock backoff between attempts, linear: attempt k sleeps
  /// k * retry_backoff_ms.
  double retry_backoff_ms = 100.0;
  /// Background heartbeat period for StartHeartbeat (0 = no heartbeat).
  int heartbeat_interval_ms = 0;
  /// Sent in the Hello handshake, for the agent's logs.
  std::string client_name = "master";
  /// Registry key of the policy this session wants (multi-session servers
  /// in registry mode create a per-session instance from it). Empty = the
  /// server's default; shared-policy servers ignore it.
  std::string policy_key;
  /// Cluster machine count M, needed to interpret State.assignments (the
  /// state alone only determines N). 0 = take machine_up.size() from each
  /// state, which is only set under fault injection.
  int num_machines = 0;
  /// Wire protocol version to speak. 0 = auto: v3 (trace-context envelope)
  /// when tracing is enabled at handshake time, with an automatic
  /// downgrade-and-reconnect to v2 when the server rejects v3 — the
  /// rejection is remembered, so later reconnects go straight to v2. An
  /// explicit 2 or 3 pins the version (no downgrade; a v2-only server then
  /// fails the handshake).
  uint16_t wire_version = 0;
};

/// The master's stub for a remote agent: an rl::Policy whose every entry
/// point is an RPC. Because it *is* a Policy, the whole in-process stack —
/// core::RunOnline, its bounded-retry/fallback degradation, the scheduler
/// adapter — runs unchanged against an agent living in another process;
/// when the agent dies mid-run the same PR-2 semantics apply at the process
/// boundary (SelectAction returns kUnavailable, the loop retries with
/// backoff, then falls back to the deployed schedule).
///
/// Thread safety: all RPCs serialize on an internal mutex, so the client
/// may be shared by a control loop and the background heartbeat thread.
class MasterClient : public rl::Policy {
 public:
  /// Wraps an already-connected transport (e.g. a loopback end). The
  /// client cannot reconnect this flavor: once the transport dies, every
  /// RPC fails with kUnavailable.
  MasterClient(std::unique_ptr<net::Transport> transport,
               MasterClientOptions options);

  /// Dials `host`:`port` lazily (first RPC or explicit Connect) and
  /// re-dials after failures.
  MasterClient(std::string host, int port, MasterClientOptions options);

  ~MasterClient() override;
  MasterClient(const MasterClient&) = delete;
  MasterClient& operator=(const MasterClient&) = delete;

  /// Ensures a live connection and a completed Hello handshake.
  Status Connect();

  /// Remote policy identity from the handshake (empty before Connect).
  HelloResponse remote_info() const;

  /// One heartbeat round-trip (single attempt, no retry). Against a server
  /// that stamps Pongs, each Ping also refreshes the NTP-style clock-offset
  /// estimate (see EstimatedClockOffsetUs).
  Status Ping();

  /// Latest clock-offset estimate in microseconds, defined as
  /// server_tracer_clock - client_tracer_clock: add it to a client-side
  /// trace timestamp to land on the server's trace timeline (what
  /// scripts/merge_traces.py does). Kept from the minimum-RTT Ping seen so
  /// far, the standard NTP trick — the symmetric-delay assumption is least
  /// wrong on the fastest round trip. Fails with kFailedPrecondition until
  /// a Ping has completed against a stamping server.
  StatusOr<double> EstimatedClockOffsetUs() const;

  /// The wire version negotiated at the Hello handshake (0 before Connect).
  uint16_t wire_version() const;

  /// Starts/stops the background heartbeat thread
  /// (options.heartbeat_interval_ms must be > 0 to start).
  Status StartHeartbeat();
  void StopHeartbeat();

  /// Closes the connection (the destructor does this too).
  void Shutdown();

  /// ---- rl::Policy -------------------------------------------------------
  std::string name() const override;
  std::string Describe() const override;
  StatusOr<rl::PolicyAction> SelectAction(const rl::State& state,
                                          double epsilon,
                                          Rng* rng) const override;
  StatusOr<sched::Schedule> GreedyAction(const rl::State& state) const override;
  StatusOr<sched::Schedule> FinalSchedule(
      const rl::State& state) const override;
  bool trainable() const override;
  void Observe(rl::Transition transition) override;
  double TrainStep() override;
  /// Saves on the *agent's* filesystem via the SaveArtifact RPC.
  Status Save(const std::string& prefix) const override;

 private:
  /// One RPC: ensure connected, send, await the typed response. Retries
  /// transport failures per options; never retries a remote error.
  StatusOr<std::string> Call(net::MsgType request_type,
                             const std::string& payload,
                             net::MsgType response_type) const;
  StatusOr<std::string> CallOnceLocked(net::MsgType request_type,
                                       const std::string& payload,
                                       net::MsgType response_type) const;
  Status EnsureConnectedLocked() const;
  /// The Hello round-trip at `version`; on success records the negotiated
  /// session version. An ErrorResponse surfaces as its decoded status (so
  /// the caller can spot a version rejection).
  Status HelloLocked(uint16_t version) const;
  /// The version the next handshake should attempt (explicit option, else
  /// sticky downgrade cap, else v3-when-tracing auto).
  uint16_t HandshakeVersionLocked() const;
  void DropConnectionLocked() const;
  StatusOr<GetScheduleResponse> GetSchedule(GetScheduleRequest request) const;
  int NumMachinesFor(const rl::State& state) const;

  const std::string host_;
  const int port_ = 0;
  /// True when constructed from an endpoint (may re-dial), false when
  /// wrapping a caller-provided transport.
  const bool owns_endpoint_;
  const MasterClientOptions options_;

  mutable std::mutex mutex_;
  mutable std::unique_ptr<net::Transport> transport_;
  mutable bool handshaken_ = false;
  mutable HelloResponse hello_;
  uint64_t ping_token_ = 0;
  /// Negotiated at Hello (0 before/between connections). RPCs frame at
  /// this version; v3 frames carry a fresh span id per call.
  mutable uint16_t wire_version_ = 0;
  /// Sticky auto-mode downgrade: once a server rejects v3 this pins later
  /// handshakes (survives DropConnectionLocked on purpose).
  mutable uint16_t version_cap_ = 0;
  /// Lazily minted trace id labeling every RPC span from this client.
  mutable uint64_t trace_id_ = 0;
  // Minimum-RTT clock-offset estimate from Pong timestamps.
  mutable bool has_offset_ = false;
  mutable double clock_offset_us_ = 0.0;
  mutable double best_rtt_us_ = 0.0;

  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;
  std::thread heartbeat_thread_;
};

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_MASTER_CLIENT_H_
