#include "ctrl/http_introspect.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace drlstream::ctrl {
namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IoError("http: " + what + ": " + std::strerror(err));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

/// Parses "GET <path> ..." out of a complete request head. Query strings
/// are dropped (the endpoints take no parameters).
HttpResponse Dispatch(const std::string& head,
                      const HttpIntrospect::Handler& handler) {
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return HttpResponse{400, "text/plain; charset=utf-8",
                        "malformed request line\n"};
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n"};
  }
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (path.empty() || path[0] != '/') {
    return HttpResponse{400, "text/plain; charset=utf-8", "bad path\n"};
  }
  return handler(path);
}

}  // namespace

StatusOr<std::unique_ptr<HttpIntrospect>> HttpIntrospect::Bind(
    const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("http: port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        "http: '" + host + "' is not a numeric IPv4 address or 'localhost'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("bind " + host + ":" + std::to_string(port), err);
  }
  if (::listen(fd, 16) < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("listen", err);
  }
  Status nonblocking = SetNonBlocking(fd);
  if (!nonblocking.ok()) {
    ::close(fd);
    return nonblocking;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    return ErrnoStatus("getsockname", err);
  }
  return std::unique_ptr<HttpIntrospect>(
      new HttpIntrospect(fd, ntohs(bound.sin_port)));
}

HttpIntrospect::HttpIntrospect(int listen_fd, int port)
    : listen_fd_(listen_fd), port_(port) {}

HttpIntrospect::~HttpIntrospect() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

size_t HttpIntrospect::AppendPollFds(std::vector<struct pollfd>* pfds) {
  size_t added = 0;
  pfds->push_back({listen_fd_, POLLIN, 0});
  ++added;
  for (const Conn& conn : conns_) {
    short events = 0;
    if (!conn.responding) events |= POLLIN;
    if (!conn.out.empty()) events |= POLLOUT;
    pfds->push_back({conn.fd, events, 0});
    ++added;
  }
  return added;
}

void HttpIntrospect::ServiceConn(Conn* conn, const Handler& handler) {
  if (!conn->responding) {
    char buf[2048];
    while (true) {
      const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->in.append(buf, static_cast<size_t>(n));
        if (conn->in.size() > kMaxRequestBytes) {
          conn->out = RenderResponse(HttpResponse{
              400, "text/plain; charset=utf-8", "request too large\n"});
          conn->responding = true;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error before a full request: drop the connection.
      if (!conn->responding && conn->in.find("\r\n\r\n") == std::string::npos &&
          conn->in.find("\n\n") == std::string::npos) {
        ::close(conn->fd);
        conn->fd = -1;
        return;
      }
      break;
    }
    if (!conn->responding && (conn->in.find("\r\n\r\n") != std::string::npos ||
                              conn->in.find("\n\n") != std::string::npos)) {
      conn->out = RenderResponse(Dispatch(conn->in, handler));
      conn->responding = true;
    }
  }
  while (conn->responding && conn->out_off < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    ::close(conn->fd);  // peer gone mid-response
    conn->fd = -1;
    return;
  }
  // Fully flushed: one request per connection, so close. A partial flush
  // leaves `out` non-empty and POLLOUT re-arms the send above.
  if (conn->responding && conn->out_off >= conn->out.size()) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void HttpIntrospect::AcceptReady(const Handler& handler) {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN / transient accept errors: try again next poll
    }
    if (static_cast<int>(conns_.size()) >= kMaxConnections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.push_back(std::move(conn));
    // The request bytes often ride in right behind the SYN; try serving
    // immediately instead of waiting out a poll cycle.
    ServiceConn(&conns_.back(), handler);
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.fd < 0; }),
               conns_.end());
}

void HttpIntrospect::OnPollResults(const struct pollfd* pfds, size_t count,
                                   const Handler& handler) {
  if (count == 0) return;
  // Entry 0 is the listener; entries 1..count-1 line up with conns_ as it
  // stood when AppendPollFds ran (accepts only happen below, afterwards).
  for (size_t i = 1; i < count && i - 1 < conns_.size(); ++i) {
    Conn& conn = conns_[i - 1];
    const short revents = pfds[i].revents;
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
      // Flush what we can (HUP can coincide with readable bytes), then
      // let ServiceConn decide; a dead peer shows up as read/send errors.
    }
    if (revents != 0 && conn.fd >= 0) ServiceConn(&conn, handler);
  }
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const Conn& c) { return c.fd < 0; }),
               conns_.end());
  if (pfds[0].revents & POLLIN) AcceptReady(handler);
}

}  // namespace drlstream::ctrl
