#ifndef DRLSTREAM_CTRL_SHARED_REPLAY_H_
#define DRLSTREAM_CTRL_SHARED_REPLAY_H_

#include <cstdint>
#include <map>

#include "rl/policy.h"
#include "rl/replay_buffer.h"

namespace drlstream::ctrl {

/// The paper's "transition sample database" generalized into a
/// cross-session experience pool: in the AgentServer's shared-policy mode
/// every session's Observe lands here, so one policy trains on the pooled
/// experience of all connected masters (the Decima-style single scheduler
/// brain absorbing many job streams). The pool forwards transitions to the
/// shared policy's own replay buffer — storage and sampling stay the
/// policy's, bit-identical to feeding it directly — and adds the
/// cross-session bookkeeping the server's metrics and the stress tests
/// read: how many samples each session contributed and how many train
/// steps ran against the pooled data.
///
/// Single-writer by design: only the server's event-loop thread touches
/// it, which is what keeps "observed then trained" ordering deterministic
/// for a fixed request arrival order. Not thread-safe.
class ExperiencePool {
 public:
  explicit ExperiencePool(rl::Policy* policy) : policy_(policy) {}

  /// Forwards one transition from `session_id` to the shared policy.
  void Observe(uint64_t session_id, rl::Transition transition);

  /// One training step against the pooled experience.
  double TrainStep();

  int64_t observed_total() const { return observed_total_; }
  int64_t train_steps() const { return train_steps_; }
  /// Samples contributed per session (accept-order ids), for tests and
  /// diagnostics.
  const std::map<uint64_t, int64_t>& per_session() const {
    return per_session_;
  }

  rl::Policy* policy() const { return policy_; }

 private:
  rl::Policy* policy_;
  int64_t observed_total_ = 0;
  int64_t train_steps_ = 0;
  std::map<uint64_t, int64_t> per_session_;
};

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_SHARED_REPLAY_H_
