#ifndef DRLSTREAM_CTRL_MESSAGES_H_
#define DRLSTREAM_CTRL_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "rl/replay_buffer.h"
#include "rl/state.h"
#include "sched/schedule.h"

namespace drlstream::ctrl {

/// Typed messages of the master <-> agent control plane (the paper's
/// Section 3.1 boundary: the DRL agent runs outside the DSDPS and the
/// custom scheduler in the master exchanges state/schedule messages with
/// it). Each struct has an Encode function producing a frame payload and a
/// Decode function that validates defensively: any length, range or
/// trailing-bytes violation is a Status error, never a crash (see
/// tests/net_test.cc).
///
/// Responses embed a Status first: a decoded response either carries the
/// remote call's result or reproduces its error exactly, so the master's
/// degradation path sees the same Status codes it would see in-process.

/// ---- Handshake ----------------------------------------------------------

struct HelloRequest {
  std::string client_name;
  /// Registry key of the policy this session wants served (multi-session
  /// servers resolve it through the PolicyRegistry per session). Empty =
  /// the server's default; ignored by servers in shared-policy mode, which
  /// bind every session to the one shared policy.
  std::string policy_key;
};

struct HelloResponse {
  std::string policy_name;    // rl::Policy::name() of the served policy
  std::string registry_key;   // rl::Policy::registry_key()
  std::string description;    // rl::Policy::Describe()
  bool trainable = false;
  /// Accept-order session id (1-based) assigned by the server: the
  /// deterministic ordering key for cross-session request batching, and a
  /// stable identity for logs/tests (fd numbers are reused, ids are not).
  uint64_t session_id = 0;
};

/// ---- GetSchedule --------------------------------------------------------

/// Which Policy entry point the master is invoking.
enum class ScheduleMode : uint8_t {
  kExplore = 0,  // SelectAction(state, epsilon, rng)
  kGreedy = 1,   // GreedyAction(state)
  kFinal = 2,    // FinalSchedule(state)
};

struct GetScheduleRequest {
  ScheduleMode mode = ScheduleMode::kGreedy;
  int32_t num_machines = 0;  // M; the state alone only determines N
  rl::State state;
  double epsilon = 0.0;      // kExplore only
  /// Serialized exploration RNG (Rng::SerializeState, kExplore only). The
  /// agent draws from it and returns the advanced state, so the master's
  /// RNG stream stays bit-identical to an in-process run.
  std::string rng_state;
};

/// One re-assigned executor. Schedules cross the wire as incremental
/// diffs against the deterministic base both sides derive from the request
/// state — only executors whose placement changed travel, matching the
/// paper's incremental deployment.
struct ScheduleDiffEntry {
  int32_t executor = 0;
  int32_t machine = 0;
  int32_t process = 0;
};

struct ScheduleDiff {
  int32_t num_executors = 0;
  int32_t num_machines = 0;
  std::vector<ScheduleDiffEntry> entries;
};

struct GetScheduleResponse {
  ScheduleDiff diff;
  int32_t move_index = -1;  // rl::PolicyAction::move_index
  std::string rng_state;    // advanced RNG (kExplore only)
};

/// The canonical diff base for a request state: every executor on
/// state.assignments[i], process 0. Both ends derive it independently.
sched::Schedule DiffBaseFromState(const rl::State& state, int num_machines);

/// Executors whose (machine, process) differs between base and target.
/// Base and target must agree on dimensions.
ScheduleDiff MakeScheduleDiff(const sched::Schedule& base,
                              const sched::Schedule& target);

/// MakeScheduleDiff against the implicit DiffBaseFromState(state, ...)
/// base, without materializing it — the server's per-reply path diffs
/// every schedule against the request state, and the base Schedule exists
/// only to be compared against.
ScheduleDiff MakeScheduleDiffFromState(const rl::State& state,
                                       const sched::Schedule& target);

/// Reconstructs the full schedule; validates dimensions and entry ranges.
StatusOr<sched::Schedule> ApplyScheduleDiff(const sched::Schedule& base,
                                            const ScheduleDiff& diff);

/// ---- Observe / TrainStep / SaveArtifact / heartbeat ---------------------

struct ObserveRequest {
  rl::Transition transition;
};

struct TrainStepRequest {
  int32_t steps = 1;
};

struct TrainStepResponse {
  double loss = 0.0;  // loss of the last performed step
};

struct SaveArtifactRequest {
  std::string prefix;  // path prefix on the *agent's* filesystem
};

struct PingMessage {
  uint64_t token = 0;  // echoed back in the Pong
  /// Server receive / transmit stamps in the *server's* tracer-epoch
  /// microseconds (obs::Tracer::NowUs). Zero in requests; the server fills
  /// them before echoing, which lets the client form an NTP-style
  /// clock-offset estimate: with the client's send/recv stamps t0/t3 and
  /// these as t1/t2, offset = ((t1 - t0) + (t2 - t3)) / 2 estimates
  /// server_clock - client_clock (see scripts/merge_traces.py). A legacy
  /// 8-byte Ping payload (token only) still decodes, with both stamps 0.
  double server_recv_us = 0.0;
  double server_send_us = 0.0;
};

/// ---- Codecs -------------------------------------------------------------
///
/// Request/notification payloads. Decoders require full consumption.

std::string EncodeHelloRequest(const HelloRequest& msg);
StatusOr<HelloRequest> DecodeHelloRequest(std::string_view payload);

std::string EncodeGetScheduleRequest(const GetScheduleRequest& msg);
StatusOr<GetScheduleRequest> DecodeGetScheduleRequest(
    std::string_view payload);

std::string EncodeObserveRequest(const ObserveRequest& msg);
StatusOr<ObserveRequest> DecodeObserveRequest(std::string_view payload);

std::string EncodeTrainStepRequest(const TrainStepRequest& msg);
StatusOr<TrainStepRequest> DecodeTrainStepRequest(std::string_view payload);

std::string EncodeSaveArtifactRequest(const SaveArtifactRequest& msg);
StatusOr<SaveArtifactRequest> DecodeSaveArtifactRequest(
    std::string_view payload);

std::string EncodePingMessage(const PingMessage& msg);
StatusOr<PingMessage> DecodePingMessage(std::string_view payload);

/// Response payloads: a Status envelope, then the body when OK. The
/// decoders return the embedded error as their own error, verbatim, so the
/// caller cannot tell a remote failure from a local one (by design).
std::string EncodeHelloResponse(const Status& status,
                                const HelloResponse& body);
StatusOr<HelloResponse> DecodeHelloResponse(std::string_view payload);

std::string EncodeGetScheduleResponse(const Status& status,
                                      const GetScheduleResponse& body);
/// Appends the same encoding to an existing writer — the server frames its
/// hottest reply in place (net::BeginFrame / net::EndFrame) instead of
/// encoding a payload string and copying it into a frame.
void EncodeGetScheduleResponseTo(const Status& status,
                                 const GetScheduleResponse& body,
                                 net::WireWriter* writer);
/// The kExplore fast path: byte-identical to EncodeGetScheduleResponseTo
/// with an OK status and rng.SerializeState() as rng_state, but the ~2.5
/// KiB engine state is serialized straight into the writer instead of
/// through an intermediate string.
void EncodeExploreScheduleResponseTo(const ScheduleDiff& diff,
                                     int32_t move_index, const Rng& rng,
                                     net::WireWriter* writer);
StatusOr<GetScheduleResponse> DecodeGetScheduleResponse(
    std::string_view payload);

std::string EncodeObserveResponse(const Status& status);
Status DecodeObserveResponse(std::string_view payload);

std::string EncodeTrainStepResponse(const Status& status,
                                    const TrainStepResponse& body);
StatusOr<TrainStepResponse> DecodeTrainStepResponse(std::string_view payload);

std::string EncodeSaveArtifactResponse(const Status& status);
Status DecodeSaveArtifactResponse(std::string_view payload);

/// Generic error reply (kErrorResponse): just a non-OK Status.
std::string EncodeErrorResponse(const Status& status);
/// Always returns a non-OK status (InvalidArgument if the payload is
/// malformed or claims OK).
Status DecodeErrorResponse(std::string_view payload);

/// Shared sub-codecs (exposed for the round-trip benchmark/tests).
void EncodeState(const rl::State& state, net::WireWriter* writer);
Status DecodeState(net::WireReader* reader, rl::State* out);
void EncodeTransition(const rl::Transition& transition,
                      net::WireWriter* writer);
Status DecodeTransition(net::WireReader* reader, rl::Transition* out);
void EncodeScheduleDiff(const ScheduleDiff& diff, net::WireWriter* writer);
Status DecodeScheduleDiff(net::WireReader* reader, ScheduleDiff* out);
/// Full-schedule codec (artifact of the protocol for callers that want a
/// complete solution, and the benchmark's full-vs-diff comparison).
void EncodeSchedule(const sched::Schedule& schedule, net::WireWriter* writer);
StatusOr<sched::Schedule> DecodeSchedule(net::WireReader* reader);

}  // namespace drlstream::ctrl

#endif  // DRLSTREAM_CTRL_MESSAGES_H_
