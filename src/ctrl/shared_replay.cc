#include "ctrl/shared_replay.h"

#include <utility>

#include "obs/metrics.h"

namespace drlstream::ctrl {
namespace {

struct PoolMetrics {
  obs::Counter* observed;
  obs::Counter* train_steps;
  obs::Gauge* sessions_contributing;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Get();
      return PoolMetrics{
          registry.counter("ctrl.server.pool.observed"),
          registry.counter("ctrl.server.pool.train_steps"),
          registry.gauge("ctrl.server.pool.sessions_contributing")};
    }();
    return metrics;
  }
};

}  // namespace

void ExperiencePool::Observe(uint64_t session_id, rl::Transition transition) {
  policy_->Observe(std::move(transition));
  ++observed_total_;
  ++per_session_[session_id];
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.observed->Add();
  metrics.sessions_contributing->Set(
      static_cast<double>(per_session_.size()));
}

double ExperiencePool::TrainStep() {
  ++train_steps_;
  PoolMetrics::Get().train_steps->Add();
  return policy_->TrainStep();
}

}  // namespace drlstream::ctrl
