file(REMOVE_RECURSE
  "CMakeFiles/fig10_wordcount_latency.dir/fig10_wordcount_latency.cc.o"
  "CMakeFiles/fig10_wordcount_latency.dir/fig10_wordcount_latency.cc.o.d"
  "fig10_wordcount_latency"
  "fig10_wordcount_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wordcount_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
