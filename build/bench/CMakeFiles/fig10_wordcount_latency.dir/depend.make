# Empty dependencies file for fig10_wordcount_latency.
# This may be replaced when dependencies are built.
