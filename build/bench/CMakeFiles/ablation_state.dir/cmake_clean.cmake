file(REMOVE_RECURSE
  "CMakeFiles/ablation_state.dir/ablation_state.cc.o"
  "CMakeFiles/ablation_state.dir/ablation_state.cc.o.d"
  "ablation_state"
  "ablation_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
