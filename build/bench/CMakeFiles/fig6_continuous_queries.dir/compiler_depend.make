# Empty compiler generated dependencies file for fig6_continuous_queries.
# This may be replaced when dependencies are built.
