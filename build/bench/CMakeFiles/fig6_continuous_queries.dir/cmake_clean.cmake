file(REMOVE_RECURSE
  "CMakeFiles/fig6_continuous_queries.dir/fig6_continuous_queries.cc.o"
  "CMakeFiles/fig6_continuous_queries.dir/fig6_continuous_queries.cc.o.d"
  "fig6_continuous_queries"
  "fig6_continuous_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_continuous_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
