# Empty compiler generated dependencies file for micro_knn.
# This may be replaced when dependencies are built.
