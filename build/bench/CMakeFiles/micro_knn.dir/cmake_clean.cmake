file(REMOVE_RECURSE
  "CMakeFiles/micro_knn.dir/micro_knn.cc.o"
  "CMakeFiles/micro_knn.dir/micro_knn.cc.o.d"
  "micro_knn"
  "micro_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
