file(REMOVE_RECURSE
  "CMakeFiles/fig9_reward_log.dir/fig9_reward_log.cc.o"
  "CMakeFiles/fig9_reward_log.dir/fig9_reward_log.cc.o.d"
  "fig9_reward_log"
  "fig9_reward_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_reward_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
