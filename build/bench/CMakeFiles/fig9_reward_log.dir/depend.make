# Empty dependencies file for fig9_reward_log.
# This may be replaced when dependencies are built.
