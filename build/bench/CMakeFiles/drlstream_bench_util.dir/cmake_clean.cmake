file(REMOVE_RECURSE
  "CMakeFiles/drlstream_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/drlstream_bench_util.dir/bench_util.cc.o.d"
  "lib/libdrlstream_bench_util.a"
  "lib/libdrlstream_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
