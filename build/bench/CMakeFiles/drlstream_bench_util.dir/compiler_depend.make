# Empty compiler generated dependencies file for drlstream_bench_util.
# This may be replaced when dependencies are built.
