file(REMOVE_RECURSE
  "lib/libdrlstream_bench_util.a"
)
