# Empty compiler generated dependencies file for summary_table.
# This may be replaced when dependencies are built.
