file(REMOVE_RECURSE
  "CMakeFiles/summary_table.dir/summary_table.cc.o"
  "CMakeFiles/summary_table.dir/summary_table.cc.o.d"
  "summary_table"
  "summary_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
