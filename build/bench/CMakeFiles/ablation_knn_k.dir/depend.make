# Empty dependencies file for ablation_knn_k.
# This may be replaced when dependencies are built.
