# Empty compiler generated dependencies file for ablation_knn_k.
# This may be replaced when dependencies are built.
