file(REMOVE_RECURSE
  "CMakeFiles/ablation_knn_k.dir/ablation_knn_k.cc.o"
  "CMakeFiles/ablation_knn_k.dir/ablation_knn_k.cc.o.d"
  "ablation_knn_k"
  "ablation_knn_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knn_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
