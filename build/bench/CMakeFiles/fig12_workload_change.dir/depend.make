# Empty dependencies file for fig12_workload_change.
# This may be replaced when dependencies are built.
