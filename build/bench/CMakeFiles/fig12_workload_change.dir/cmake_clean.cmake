file(REMOVE_RECURSE
  "CMakeFiles/fig12_workload_change.dir/fig12_workload_change.cc.o"
  "CMakeFiles/fig12_workload_change.dir/fig12_workload_change.cc.o.d"
  "fig12_workload_change"
  "fig12_workload_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_workload_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
