# Empty dependencies file for fig7_reward_cq.
# This may be replaced when dependencies are built.
