file(REMOVE_RECURSE
  "CMakeFiles/fig7_reward_cq.dir/fig7_reward_cq.cc.o"
  "CMakeFiles/fig7_reward_cq.dir/fig7_reward_cq.cc.o.d"
  "fig7_reward_cq"
  "fig7_reward_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reward_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
