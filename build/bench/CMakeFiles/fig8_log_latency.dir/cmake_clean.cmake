file(REMOVE_RECURSE
  "CMakeFiles/fig8_log_latency.dir/fig8_log_latency.cc.o"
  "CMakeFiles/fig8_log_latency.dir/fig8_log_latency.cc.o.d"
  "fig8_log_latency"
  "fig8_log_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_log_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
