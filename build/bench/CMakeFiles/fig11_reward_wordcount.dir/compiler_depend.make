# Empty compiler generated dependencies file for fig11_reward_wordcount.
# This may be replaced when dependencies are built.
