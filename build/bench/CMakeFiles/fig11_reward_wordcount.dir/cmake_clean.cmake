file(REMOVE_RECURSE
  "CMakeFiles/fig11_reward_wordcount.dir/fig11_reward_wordcount.cc.o"
  "CMakeFiles/fig11_reward_wordcount.dir/fig11_reward_wordcount.cc.o.d"
  "fig11_reward_wordcount"
  "fig11_reward_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reward_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
