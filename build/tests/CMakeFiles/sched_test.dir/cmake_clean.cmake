file(REMOVE_RECURSE
  "CMakeFiles/sched_test.dir/sched_test.cc.o"
  "CMakeFiles/sched_test.dir/sched_test.cc.o.d"
  "sched_test"
  "sched_test.pdb"
  "sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
