file(REMOVE_RECURSE
  "CMakeFiles/miqp_test.dir/miqp_test.cc.o"
  "CMakeFiles/miqp_test.dir/miqp_test.cc.o.d"
  "miqp_test"
  "miqp_test.pdb"
  "miqp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miqp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
