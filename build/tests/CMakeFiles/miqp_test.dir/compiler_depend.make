# Empty compiler generated dependencies file for miqp_test.
# This may be replaced when dependencies are built.
