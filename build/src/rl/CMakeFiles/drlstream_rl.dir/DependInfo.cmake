
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/ddpg_agent.cc" "src/rl/CMakeFiles/drlstream_rl.dir/ddpg_agent.cc.o" "gcc" "src/rl/CMakeFiles/drlstream_rl.dir/ddpg_agent.cc.o.d"
  "/root/repo/src/rl/dqn_agent.cc" "src/rl/CMakeFiles/drlstream_rl.dir/dqn_agent.cc.o" "gcc" "src/rl/CMakeFiles/drlstream_rl.dir/dqn_agent.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/rl/CMakeFiles/drlstream_rl.dir/replay_buffer.cc.o" "gcc" "src/rl/CMakeFiles/drlstream_rl.dir/replay_buffer.cc.o.d"
  "/root/repo/src/rl/state.cc" "src/rl/CMakeFiles/drlstream_rl.dir/state.cc.o" "gcc" "src/rl/CMakeFiles/drlstream_rl.dir/state.cc.o.d"
  "/root/repo/src/rl/transition_db.cc" "src/rl/CMakeFiles/drlstream_rl.dir/transition_db.cc.o" "gcc" "src/rl/CMakeFiles/drlstream_rl.dir/transition_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drlstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/drlstream_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/miqp/CMakeFiles/drlstream_miqp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/drlstream_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/drlstream_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
