file(REMOVE_RECURSE
  "libdrlstream_rl.a"
)
