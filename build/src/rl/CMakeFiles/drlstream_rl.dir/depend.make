# Empty dependencies file for drlstream_rl.
# This may be replaced when dependencies are built.
