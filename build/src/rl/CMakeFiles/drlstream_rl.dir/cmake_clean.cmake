file(REMOVE_RECURSE
  "CMakeFiles/drlstream_rl.dir/ddpg_agent.cc.o"
  "CMakeFiles/drlstream_rl.dir/ddpg_agent.cc.o.d"
  "CMakeFiles/drlstream_rl.dir/dqn_agent.cc.o"
  "CMakeFiles/drlstream_rl.dir/dqn_agent.cc.o.d"
  "CMakeFiles/drlstream_rl.dir/replay_buffer.cc.o"
  "CMakeFiles/drlstream_rl.dir/replay_buffer.cc.o.d"
  "CMakeFiles/drlstream_rl.dir/state.cc.o"
  "CMakeFiles/drlstream_rl.dir/state.cc.o.d"
  "CMakeFiles/drlstream_rl.dir/transition_db.cc.o"
  "CMakeFiles/drlstream_rl.dir/transition_db.cc.o.d"
  "libdrlstream_rl.a"
  "libdrlstream_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
