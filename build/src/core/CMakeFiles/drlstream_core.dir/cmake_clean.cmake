file(REMOVE_RECURSE
  "CMakeFiles/drlstream_core.dir/artifacts.cc.o"
  "CMakeFiles/drlstream_core.dir/artifacts.cc.o.d"
  "CMakeFiles/drlstream_core.dir/controller.cc.o"
  "CMakeFiles/drlstream_core.dir/controller.cc.o.d"
  "CMakeFiles/drlstream_core.dir/drl_scheduler.cc.o"
  "CMakeFiles/drlstream_core.dir/drl_scheduler.cc.o.d"
  "CMakeFiles/drlstream_core.dir/environment.cc.o"
  "CMakeFiles/drlstream_core.dir/environment.cc.o.d"
  "CMakeFiles/drlstream_core.dir/experiment.cc.o"
  "CMakeFiles/drlstream_core.dir/experiment.cc.o.d"
  "CMakeFiles/drlstream_core.dir/offline.cc.o"
  "CMakeFiles/drlstream_core.dir/offline.cc.o.d"
  "CMakeFiles/drlstream_core.dir/online.cc.o"
  "CMakeFiles/drlstream_core.dir/online.cc.o.d"
  "libdrlstream_core.a"
  "libdrlstream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
