# Empty compiler generated dependencies file for drlstream_core.
# This may be replaced when dependencies are built.
