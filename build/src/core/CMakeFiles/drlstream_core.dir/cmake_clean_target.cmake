file(REMOVE_RECURSE
  "libdrlstream_core.a"
)
