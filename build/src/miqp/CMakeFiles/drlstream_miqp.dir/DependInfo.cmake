
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/miqp/knn_solver.cc" "src/miqp/CMakeFiles/drlstream_miqp.dir/knn_solver.cc.o" "gcc" "src/miqp/CMakeFiles/drlstream_miqp.dir/knn_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drlstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/drlstream_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/drlstream_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
