# Empty dependencies file for drlstream_miqp.
# This may be replaced when dependencies are built.
