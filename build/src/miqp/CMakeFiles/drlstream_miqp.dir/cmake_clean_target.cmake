file(REMOVE_RECURSE
  "libdrlstream_miqp.a"
)
