file(REMOVE_RECURSE
  "CMakeFiles/drlstream_miqp.dir/knn_solver.cc.o"
  "CMakeFiles/drlstream_miqp.dir/knn_solver.cc.o.d"
  "libdrlstream_miqp.a"
  "libdrlstream_miqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_miqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
