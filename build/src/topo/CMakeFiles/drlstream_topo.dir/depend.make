# Empty dependencies file for drlstream_topo.
# This may be replaced when dependencies are built.
