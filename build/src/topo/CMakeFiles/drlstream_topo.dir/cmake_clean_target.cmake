file(REMOVE_RECURSE
  "libdrlstream_topo.a"
)
