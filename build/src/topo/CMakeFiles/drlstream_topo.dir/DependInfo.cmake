
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/apps.cc" "src/topo/CMakeFiles/drlstream_topo.dir/apps.cc.o" "gcc" "src/topo/CMakeFiles/drlstream_topo.dir/apps.cc.o.d"
  "/root/repo/src/topo/cluster.cc" "src/topo/CMakeFiles/drlstream_topo.dir/cluster.cc.o" "gcc" "src/topo/CMakeFiles/drlstream_topo.dir/cluster.cc.o.d"
  "/root/repo/src/topo/datasets.cc" "src/topo/CMakeFiles/drlstream_topo.dir/datasets.cc.o" "gcc" "src/topo/CMakeFiles/drlstream_topo.dir/datasets.cc.o.d"
  "/root/repo/src/topo/topology.cc" "src/topo/CMakeFiles/drlstream_topo.dir/topology.cc.o" "gcc" "src/topo/CMakeFiles/drlstream_topo.dir/topology.cc.o.d"
  "/root/repo/src/topo/workload.cc" "src/topo/CMakeFiles/drlstream_topo.dir/workload.cc.o" "gcc" "src/topo/CMakeFiles/drlstream_topo.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drlstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
