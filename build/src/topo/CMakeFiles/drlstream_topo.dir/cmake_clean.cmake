file(REMOVE_RECURSE
  "CMakeFiles/drlstream_topo.dir/apps.cc.o"
  "CMakeFiles/drlstream_topo.dir/apps.cc.o.d"
  "CMakeFiles/drlstream_topo.dir/cluster.cc.o"
  "CMakeFiles/drlstream_topo.dir/cluster.cc.o.d"
  "CMakeFiles/drlstream_topo.dir/datasets.cc.o"
  "CMakeFiles/drlstream_topo.dir/datasets.cc.o.d"
  "CMakeFiles/drlstream_topo.dir/topology.cc.o"
  "CMakeFiles/drlstream_topo.dir/topology.cc.o.d"
  "CMakeFiles/drlstream_topo.dir/workload.cc.o"
  "CMakeFiles/drlstream_topo.dir/workload.cc.o.d"
  "libdrlstream_topo.a"
  "libdrlstream_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
