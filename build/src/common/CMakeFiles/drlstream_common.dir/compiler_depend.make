# Empty compiler generated dependencies file for drlstream_common.
# This may be replaced when dependencies are built.
