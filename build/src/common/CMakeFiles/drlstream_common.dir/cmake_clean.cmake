file(REMOVE_RECURSE
  "CMakeFiles/drlstream_common.dir/csv.cc.o"
  "CMakeFiles/drlstream_common.dir/csv.cc.o.d"
  "CMakeFiles/drlstream_common.dir/flags.cc.o"
  "CMakeFiles/drlstream_common.dir/flags.cc.o.d"
  "CMakeFiles/drlstream_common.dir/logging.cc.o"
  "CMakeFiles/drlstream_common.dir/logging.cc.o.d"
  "CMakeFiles/drlstream_common.dir/rng.cc.o"
  "CMakeFiles/drlstream_common.dir/rng.cc.o.d"
  "CMakeFiles/drlstream_common.dir/stats.cc.o"
  "CMakeFiles/drlstream_common.dir/stats.cc.o.d"
  "CMakeFiles/drlstream_common.dir/status.cc.o"
  "CMakeFiles/drlstream_common.dir/status.cc.o.d"
  "libdrlstream_common.a"
  "libdrlstream_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
