file(REMOVE_RECURSE
  "libdrlstream_common.a"
)
