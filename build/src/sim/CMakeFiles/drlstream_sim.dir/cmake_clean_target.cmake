file(REMOVE_RECURSE
  "libdrlstream_sim.a"
)
