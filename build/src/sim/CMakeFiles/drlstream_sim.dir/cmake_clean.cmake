file(REMOVE_RECURSE
  "CMakeFiles/drlstream_sim.dir/simulator.cc.o"
  "CMakeFiles/drlstream_sim.dir/simulator.cc.o.d"
  "libdrlstream_sim.a"
  "libdrlstream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
