# Empty dependencies file for drlstream_sim.
# This may be replaced when dependencies are built.
