
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/model_based.cc" "src/sched/CMakeFiles/drlstream_sched.dir/model_based.cc.o" "gcc" "src/sched/CMakeFiles/drlstream_sched.dir/model_based.cc.o.d"
  "/root/repo/src/sched/ridge.cc" "src/sched/CMakeFiles/drlstream_sched.dir/ridge.cc.o" "gcc" "src/sched/CMakeFiles/drlstream_sched.dir/ridge.cc.o.d"
  "/root/repo/src/sched/round_robin.cc" "src/sched/CMakeFiles/drlstream_sched.dir/round_robin.cc.o" "gcc" "src/sched/CMakeFiles/drlstream_sched.dir/round_robin.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/drlstream_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/drlstream_sched.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drlstream_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/drlstream_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
