file(REMOVE_RECURSE
  "libdrlstream_sched.a"
)
