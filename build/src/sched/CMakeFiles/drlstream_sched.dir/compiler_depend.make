# Empty compiler generated dependencies file for drlstream_sched.
# This may be replaced when dependencies are built.
