file(REMOVE_RECURSE
  "CMakeFiles/drlstream_sched.dir/model_based.cc.o"
  "CMakeFiles/drlstream_sched.dir/model_based.cc.o.d"
  "CMakeFiles/drlstream_sched.dir/ridge.cc.o"
  "CMakeFiles/drlstream_sched.dir/ridge.cc.o.d"
  "CMakeFiles/drlstream_sched.dir/round_robin.cc.o"
  "CMakeFiles/drlstream_sched.dir/round_robin.cc.o.d"
  "CMakeFiles/drlstream_sched.dir/schedule.cc.o"
  "CMakeFiles/drlstream_sched.dir/schedule.cc.o.d"
  "libdrlstream_sched.a"
  "libdrlstream_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
