# Empty compiler generated dependencies file for drlstream_nn.
# This may be replaced when dependencies are built.
