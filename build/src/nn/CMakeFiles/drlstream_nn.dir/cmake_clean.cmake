file(REMOVE_RECURSE
  "CMakeFiles/drlstream_nn.dir/gradient_check.cc.o"
  "CMakeFiles/drlstream_nn.dir/gradient_check.cc.o.d"
  "CMakeFiles/drlstream_nn.dir/loss.cc.o"
  "CMakeFiles/drlstream_nn.dir/loss.cc.o.d"
  "CMakeFiles/drlstream_nn.dir/matrix.cc.o"
  "CMakeFiles/drlstream_nn.dir/matrix.cc.o.d"
  "CMakeFiles/drlstream_nn.dir/mlp.cc.o"
  "CMakeFiles/drlstream_nn.dir/mlp.cc.o.d"
  "CMakeFiles/drlstream_nn.dir/optimizer.cc.o"
  "CMakeFiles/drlstream_nn.dir/optimizer.cc.o.d"
  "libdrlstream_nn.a"
  "libdrlstream_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drlstream_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
