file(REMOVE_RECURSE
  "libdrlstream_nn.a"
)
