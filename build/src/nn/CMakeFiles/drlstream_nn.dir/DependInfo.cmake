
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gradient_check.cc" "src/nn/CMakeFiles/drlstream_nn.dir/gradient_check.cc.o" "gcc" "src/nn/CMakeFiles/drlstream_nn.dir/gradient_check.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/drlstream_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/drlstream_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/drlstream_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/drlstream_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/drlstream_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/drlstream_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/drlstream_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/drlstream_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drlstream_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
