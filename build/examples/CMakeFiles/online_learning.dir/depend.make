# Empty dependencies file for online_learning.
# This may be replaced when dependencies are built.
