file(REMOVE_RECURSE
  "CMakeFiles/online_learning.dir/online_learning.cpp.o"
  "CMakeFiles/online_learning.dir/online_learning.cpp.o.d"
  "online_learning"
  "online_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
