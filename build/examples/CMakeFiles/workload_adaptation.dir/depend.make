# Empty dependencies file for workload_adaptation.
# This may be replaced when dependencies are built.
