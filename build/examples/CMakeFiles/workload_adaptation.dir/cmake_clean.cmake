file(REMOVE_RECURSE
  "CMakeFiles/workload_adaptation.dir/workload_adaptation.cpp.o"
  "CMakeFiles/workload_adaptation.dir/workload_adaptation.cpp.o.d"
  "workload_adaptation"
  "workload_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
