# Empty dependencies file for log_stream_processing.
# This may be replaced when dependencies are built.
