file(REMOVE_RECURSE
  "CMakeFiles/log_stream_processing.dir/log_stream_processing.cpp.o"
  "CMakeFiles/log_stream_processing.dir/log_stream_processing.cpp.o.d"
  "log_stream_processing"
  "log_stream_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_stream_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
