file(REMOVE_RECURSE
  "CMakeFiles/word_count_stream.dir/word_count_stream.cpp.o"
  "CMakeFiles/word_count_stream.dir/word_count_stream.cpp.o.d"
  "word_count_stream"
  "word_count_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_count_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
