# Empty dependencies file for word_count_stream.
# This may be replaced when dependencies are built.
