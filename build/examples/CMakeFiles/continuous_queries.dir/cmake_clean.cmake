file(REMOVE_RECURSE
  "CMakeFiles/continuous_queries.dir/continuous_queries.cpp.o"
  "CMakeFiles/continuous_queries.dir/continuous_queries.cpp.o.d"
  "continuous_queries"
  "continuous_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
