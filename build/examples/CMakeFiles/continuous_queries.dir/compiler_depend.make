# Empty compiler generated dependencies file for continuous_queries.
# This may be replaced when dependencies are built.
