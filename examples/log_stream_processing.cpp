// The paper's log stream processing topology (Fig. 4) in functional mode:
// IIS-style log lines flow through the LogRules bolt into the Indexer and
// Counter branches, whose Database bolts store results in separate
// collections — and the example compares the measured latency of the
// default deployment against a model-based one trained on the fly.
//
//   ./log_stream_processing [--seconds=4] [--samples=120] [--seed=3]

#include <cstdio>

#include "common/flags.h"
#include "core/environment.h"
#include "core/offline.h"
#include "sched/model_based.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "topo/apps.h"

using namespace drlstream;

namespace {

/// Measures a schedule on a fresh functional simulator.
double Measure(const topo::App& app, const topo::ClusterConfig& cluster,
               const sched::Schedule& schedule, double seconds,
               uint64_t seed, const char* label) {
  sim::SimOptions options;
  options.functional = true;
  options.seed = seed;
  sim::Simulator simulator(&app.topology, &app.workload, cluster, options);
  if (auto st = simulator.Init(schedule); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return -1.0;
  }
  // Let the pipeline warm up, then measure the stabilized window.
  simulator.RunFor(2000.0);
  simulator.ResetWindow();
  simulator.RunFor(seconds * 1000.0);
  const double latency = simulator.WindowAvgLatencyMs();
  std::printf("  %-22s %8.3f ms   (%lld log lines processed)\n", label,
              latency, simulator.counters().roots_completed);
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);
  const double seconds = flags.GetDouble("seconds", 4.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));

  topo::AppOptions app_options;
  app_options.functional = true;
  topo::App app = topo::BuildLogProcessing(app_options);
  topo::ClusterConfig cluster;

  std::printf("log stream processing: %d executors over %d machines\n",
              app.topology.num_executors(), cluster.num_machines);

  // 1. Collect training samples (random deployments) with detailed stats.
  sim::SimOptions train_sim;
  train_sim.seed = seed;
  core::MeasurementConfig measure;
  measure.stabilize_ms = 2200.0;
  measure.num_measurements = 2;
  measure.measurement_interval_ms = 400.0;
  core::SchedulingEnvironment env(&app.topology, app.workload, cluster,
                                  train_sim, measure);
  Rng rng(seed);
  if (auto st = env.Reset(sched::Schedule::Random(
          app.topology.num_executors(), cluster.num_machines, &rng));
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  core::CollectionOptions collect;
  collect.num_samples = flags.GetInt("samples", 150);
  collect.seed = seed + 1;
  std::printf("collecting %d random-deployment samples...\n",
              collect.num_samples);
  auto db = core::CollectOfflineSamples(&env, collect);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // 2. Fit the [25]-style delay model and search a schedule with it.
  sched::DelayModel model(&app.topology, &cluster);
  if (auto st = model.Fit(db->ToPerfSamples()); !st.ok()) {
    std::fprintf(stderr, "model fit failed: %s\n", st.ToString().c_str());
    return 1;
  }
  sched::ModelBasedScheduler model_scheduler(&model);
  sched::RoundRobinScheduler default_scheduler;
  sched::SchedulingContext context;
  context.topology = &app.topology;
  context.cluster = &cluster;
  context.spout_rates =
      app.workload.RatesVector(app.topology.SpoutComponents(), 0.0);
  auto default_schedule = default_scheduler.ComputeSchedule(context);
  auto model_schedule = model_scheduler.ComputeSchedule(context);
  if (!default_schedule.ok() || !model_schedule.ok()) {
    std::fprintf(stderr, "scheduling failed\n");
    return 1;
  }

  // 3. Compare deployments on the real (functional) pipeline.
  std::printf("\nmeasured average tuple processing time:\n");
  const double def =
      Measure(app, cluster, *default_schedule, seconds, seed + 7, "Default");
  const double mod = Measure(app, cluster, *model_schedule, seconds,
                             seed + 7, "Model-based");
  if (def > 0 && mod > 0) {
    std::printf("\nmodel-based reduces latency by %.1f%%\n",
                100.0 * (def - mod) / def);
  }

  // 4. Show the database contents the pipeline produced.
  std::printf("\nindexed URIs: %zu, status-code counters: %zu\n",
              app.sink->Snapshot("index_records").size(),
              app.sink->Snapshot("count_records").size());
  for (const auto& [key, count] : app.sink->Snapshot("count_records")) {
    std::printf("  %-12s %8lld stored updates\n", key.c_str(),
                static_cast<long long>(count));
  }
  return 0;
}
