// Quickstart: build a Storm-like topology, run it on the simulated cluster
// under two schedules, and print the measured average tuple processing time.
//
//   ./quickstart [--seed=7] [--rate_scale=1.0]
//
// This demonstrates the core loop every scheduler in this library optimizes:
// deploy a scheduling solution, let the system stabilize, measure latency.

#include <cstdio>

#include "common/flags.h"
#include "core/environment.h"
#include "sched/scheduler.h"
#include "topo/apps.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);

  // The paper's small-scale continuous-queries application: 20 executors
  // (2 spouts, 9 query bolts, 9 file bolts) on a 10-machine cluster.
  topo::AppOptions app_options;
  app_options.rate_scale = flags.GetDouble("rate_scale", 1.0);
  topo::App app =
      topo::BuildContinuousQueries(topo::Scale::kSmall, app_options);
  topo::ClusterConfig cluster;

  sim::SimOptions sim_options;
  sim_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  core::MeasurementConfig measure;
  measure.stabilize_ms = 3000.0;
  measure.num_measurements = 5;
  measure.measurement_interval_ms = 1000.0;

  core::SchedulingEnvironment env(&app.topology, app.workload, cluster,
                                  sim_options, measure);

  // Schedule 1: Storm's default round-robin spread over all 10 machines.
  sched::RoundRobinScheduler round_robin;
  sched::SchedulingContext context;
  context.topology = &app.topology;
  context.cluster = &cluster;
  context.spout_rates =
      app.workload.RatesVector(app.topology.SpoutComponents(), 0.0);
  auto rr = round_robin.ComputeSchedule(context);
  if (!rr.ok()) {
    std::fprintf(stderr, "%s\n", rr.status().ToString().c_str());
    return 1;
  }

  // Schedule 2: a locality-aware packing onto 3 machines.
  sched::Schedule packed(app.topology.num_executors(), cluster.num_machines);
  for (int i = 0; i < app.topology.num_executors(); ++i) {
    packed.Assign(i, i % 3);
  }

  std::printf("topology: %s (%d executors, %d machines)\n",
              app.topology.name().c_str(), app.topology.num_executors(),
              cluster.num_machines);

  struct Case {
    const char* name;
    const sched::Schedule* schedule;
  };
  const Case cases[] = {{"default round-robin", &*rr},
                        {"packed on 3 machines", &packed}};
  for (const Case& c : cases) {
    if (auto st = env.Reset(*c.schedule); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto latency = env.DeployAndMeasure(*c.schedule);
    if (!latency.ok()) {
      std::fprintf(stderr, "%s\n", latency.status().ToString().c_str());
      return 1;
    }
    const sim::SimCounters& counters = env.simulator()->counters();
    std::printf(
        "  %-22s avg tuple processing time %6.3f ms   "
        "(%lld tuples, %.1f%% remote hops, %lld events)\n",
        c.name, *latency, counters.roots_completed,
        100.0 * counters.remote_transfers /
            std::max(1LL, counters.remote_transfers +
                              counters.local_transfers),
        counters.events_processed);
  }
  std::printf(
      "\nThe gap between these two numbers is what the paper's DRL agent "
      "learns to exploit.\nSee examples/online_learning.cpp for the full "
      "actor-critic loop.\n");
  return 0;
}
