// Workload adaptivity demo (the Fig. 12 scenario in miniature): train the
// actor-critic agent with workload-randomized samples, then run it through a
// pluggable workload scenario and watch the agent re-schedule — the
// adjustment spike followed by re-stabilization at a low latency.
//
// The scenario is any spec the workload registry accepts; the default is the
// paper's step surge expressed as a zero-width drift:
//
//   ./workload_adaptation [--samples=300] [--epochs=250] [--seed=11]
//       [--workload=drift:from=1,to=1.5,start_ms=26000,end_ms=26000]
//       [--points=30]
//
// Try --workload=diurnal:period_ms=20000,amplitude=0.4 or
// --workload=flash_crowd:at_ms=20000,peak=3 for time-varying load.

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "core/drl_scheduler.h"
#include "core/scenario.h"
#include "topo/apps.h"
#include "workload/registry.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;

  core::PipelineConfig config;
  config.offline_samples = flags.GetInt("samples", 300);
  config.online.epochs = flags.GetInt("epochs", 250);
  config.online.train_steps_per_epoch = 2;
  config.pretrain_steps = flags.GetInt("pretrain", 1000);
  config.ddpg.gamma = 0.9;
  config.ddpg.knn_k = 32;
  config.collect_dqn_db = false;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  core::ScenarioOptions options;
  options.series.points = flags.GetInt("points", 30);
  options.series.seed = config.seed + 3;
  // Default scenario: the Fig. 12 +50% step at minute 13, as a zero-width
  // drift ramp (series pre-roll 2000 ms + 12 minutes of 6000 ms).
  const int surge_at = flags.GetInt("surge-at", 12);
  const double surge_ms =
      options.series.pre_roll_ms + surge_at * options.series.minute_ms;
  char default_spec[128];
  std::snprintf(default_spec, sizeof(default_spec),
                "drift:from=1,to=%g,start_ms=%g,end_ms=%g",
                flags.GetDouble("surge-factor", 1.5), surge_ms, surge_ms);
  options.workload_spec = flags.GetString("workload", default_spec);
  options.workload_seed = config.seed + 7;

  {
    // Validate the spec before spending minutes on training.
    auto parsed = workload::ParseWorkloadSpec(options.workload_spec,
                                              options.workload_seed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--workload: %s\n",
                   parsed.status().ToString().c_str());
      std::fprintf(stderr, "registered scenarios: %s\n",
                   workload::WorkloadRegistry::Get().KeysLine().c_str());
      return 1;
    }
    std::printf("scenario: %s\n", (*parsed)->Describe().c_str());
  }

  std::printf("training the actor-critic agent (%d offline samples, %d "
              "online epochs)...\n",
              config.offline_samples, config.online.epochs);
  auto trained =
      core::TrainAllMethods(&app.topology, app.workload, cluster, config);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }

  core::PolicyScheduler scheduler(trained->ddpg.get());
  auto run = core::MeasureScenarioSeries(app.topology, app.workload, cluster,
                                         &scheduler, options);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-minute latency under '%s':\n", run->workload.c_str());
  std::printf("  minute   latency_ms   load   moved\n");
  for (size_t p = 0; p < run->points.size(); ++p) {
    const core::ScenarioPointStats& point = run->points[p];
    std::printf("  %6zu  %10.3f   %5.2fx  %5d\n", p + 1,
                point.avg_latency_ms, point.rate_multiplier,
                point.executors_moved);
  }

  const size_t n = run->points.size();
  if (n >= 10) {
    double head = 0.0, tail = 0.0;
    for (size_t p = 0; p < 5; ++p) head += run->points[p].avg_latency_ms / 5.0;
    for (size_t p = n - 5; p < n; ++p) {
      tail += run->points[p].avg_latency_ms / 5.0;
    }
    std::printf("\nstabilized early: %.3f ms, late: %.3f ms\n", head, tail);
  }
  std::printf("total energy: %.1f J (avg %.1f W)\n", run->total_joules,
              run->avg_power_watts);
  std::printf("the agent observes the modulated arrival rates in its state "
              "(X, w) and re-schedules;\nafter each adjustment spike the "
              "latency re-stabilizes.\n");
  return 0;
}
