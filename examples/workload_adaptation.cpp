// Workload adaptivity demo (the Fig. 12 scenario in miniature): train the
// actor-critic agent with workload-randomized samples, then hit the running
// system with a +50% rate surge and watch the agent re-schedule — the
// adjustment spike followed by re-stabilization at a low latency.
//
//   ./workload_adaptation [--samples=300] [--epochs=250] [--seed=11]

#include <cstdio>

#include "common/flags.h"
#include "core/drl_scheduler.h"
#include "core/experiment.h"
#include "topo/apps.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;

  core::PipelineConfig config;
  config.offline_samples = flags.GetInt("samples", 300);
  config.online.epochs = flags.GetInt("epochs", 250);
  config.online.train_steps_per_epoch = 2;
  config.pretrain_steps = flags.GetInt("pretrain", 1000);
  config.ddpg.gamma = 0.9;
  config.ddpg.knn_k = 32;
  config.collect_dqn_db = false;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  std::printf("training the actor-critic agent (%d offline samples, %d "
              "online epochs)...\n",
              config.offline_samples, config.online.epochs);
  auto trained =
      core::TrainAllMethods(&app.topology, app.workload, cluster, config);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }

  core::PolicyScheduler scheduler(trained->ddpg.get());
  core::AdaptiveSeriesOptions options;
  options.series.points = 30;
  options.series.seed = config.seed + 3;
  options.surge_at_point = 12;
  options.surge_factor = 1.5;
  auto series = core::MeasureAdaptiveSeries(app.topology, app.workload,
                                            cluster, &scheduler, options);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-minute latency (workload +50%% at minute %d):\n",
              options.surge_at_point + 1);
  for (size_t p = 0; p < series->size(); ++p) {
    std::printf("  minute %2zu  %8.3f ms %s\n", p + 1, (*series)[p],
                static_cast<int>(p) == options.surge_at_point ? "  <- surge"
                                                              : "");
  }

  double before = 0.0, after = 0.0;
  for (int p = options.surge_at_point - 5; p < options.surge_at_point; ++p) {
    before += (*series)[p] / 5.0;
  }
  for (size_t p = series->size() - 5; p < series->size(); ++p) {
    after += (*series)[p] / 5.0;
  }
  std::printf("\nstabilized before surge: %.3f ms, after surge: %.3f ms\n",
              before, after);
  std::printf("the agent observes the new arrival rates in its state (X, w) "
              "and re-schedules;\nafter the adjustment spike the latency "
              "re-stabilizes close to the pre-surge level.\n");
  return 0;
}
