// Full actor-critic control loop on the continuous-queries application:
// offline sample collection, model fitting, offline pre-training, online
// learning, and a comparison of the final solutions of all four methods
// (Default / Model-based / DQN-based DRL / Actor-critic-based DRL).
//
//   ./online_learning [--scale=small|medium|large] [--samples=300]
//                     [--epochs=400] [--seed=11] [--policy=NAME]
//
// --policy restricts the final comparison table to one method, named by its
// policy-registry key (--help lists them); by default every method is shown.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/stats.h"
#include "core/experiment.h"
#include "rl/policy_registry.h"
#include "topo/apps.h"

using namespace drlstream;

namespace {

topo::Scale ParseScale(const std::string& s) {
  if (s == "medium") return topo::Scale::kMedium;
  if (s == "large") return topo::Scale::kLarge;
  return topo::Scale::kSmall;
}

void PrintUsage() {
  std::printf(
      "usage: online_learning [--scale=small|medium|large] [--samples=N]\n"
      "                       [--epochs=N] [--pretrain=N] [--knn_k=K]\n"
      "                       [--gamma=G] [--tsp=N] [--seed=S]\n"
      "                       [--policy=NAME]\n"
      "registered policies: %s (default: compare all)\n",
      rl::PolicyRegistry::Get().KeysLine().c_str());
}

/// Measures the stabilized latency of a deployed schedule (fresh system, no
/// cold-start inflation, averaged over a long window).
double Stabilized(const topo::App& app, const topo::ClusterConfig& cluster,
                  const sched::Schedule& schedule, uint64_t seed) {
  core::SeriesOptions options;
  options.points = 6;
  options.warmup_extra = 0.0;
  options.seed = seed;
  auto series = core::MeasureLatencySeries(app.topology, app.workload,
                                           cluster, schedule, options);
  if (!series.ok()) return -1.0;
  // Average the tail (after migration churn settles).
  return (series->at(3) + series->at(4) + series->at(5)) / 3.0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  ApplyProcessFlags(flags);

  const std::string policy_key = flags.GetString("policy", "");
  if (!policy_key.empty() && !rl::PolicyRegistry::Get().Has(policy_key)) {
    std::fprintf(
        stderr, "%s\n",
        rl::PolicyRegistry::Get().UnknownKeyError(policy_key).ToString()
            .c_str());
    return 1;
  }

  const topo::Scale scale = ParseScale(flags.GetString("scale", "small"));
  topo::AppOptions app_options;
  app_options.rate_scale = flags.GetDouble("rate_scale", 1.0);
  topo::App app = topo::BuildContinuousQueries(scale, app_options);
  topo::ClusterConfig cluster;

  core::PipelineConfig config;
  config.offline_samples = flags.GetInt("samples", 300);
  config.online.epochs = flags.GetInt("epochs", 400);
  config.pretrain_steps = flags.GetInt("pretrain", 1200);
  config.ddpg.knn_k = flags.GetInt("knn_k", 16);
  config.ddpg.gamma = flags.GetDouble("gamma", 0.99);
  config.dqn.gamma = flags.GetDouble("gamma", 0.99);
  config.online.train_steps_per_epoch = flags.GetInt("tsp", 1);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  std::printf("training all methods on %s (%d executors)...\n",
              app.topology.name().c_str(), app.topology.num_executors());
  auto trained_or =
      core::TrainAllMethods(&app.topology, app.workload, cluster, config);
  if (!trained_or.ok()) {
    std::fprintf(stderr, "%s\n", trained_or.status().ToString().c_str());
    return 1;
  }
  core::TrainedMethods& trained = *trained_or;

  std::printf("online learning: ddpg mean reward (first 50 epochs) %.3f -> "
              "(last 50) %.3f\n",
              Mean({trained.ddpg_online.rewards.begin(),
                    trained.ddpg_online.rewards.begin() + 50}),
              Mean({trained.ddpg_online.rewards.end() - 50,
                    trained.ddpg_online.rewards.end()}));

  struct Row {
    const char* key;  // policy-registry key; matched against --policy
    const char* name;
    const sched::Schedule* schedule;
  };
  const Row rows[] = {
      {"round-robin", "Default", &trained.default_schedule},
      {"model-based", "Model-based", &trained.model_based_schedule},
      {"dqn", "DQN-based DRL", &trained.dqn_online.final_schedule},
      {"ddpg", "Actor-critic-based DRL", &trained.ddpg_online.final_schedule},
  };
  std::printf("\n%-24s %s\n", "method", "stabilized avg tuple time (ms)");
  for (const Row& row : rows) {
    if (!policy_key.empty() && policy_key != row.key) continue;
    std::printf("%-24s %6.3f\n", row.name,
                Stabilized(app, cluster, *row.schedule, config.seed + 77));
  }
  return 0;
}
