// The DRL agent as an external service (paper Section 3.1: the agent runs
// *outside* the DSDPS and the master's custom scheduler talks to it over
// the network). Hosts any registry policy behind the binary control-plane
// protocol and serves GetSchedule/Observe/TrainStep/SaveArtifact RPCs until
// killed.
//
//   ./agent_server [--port=0] [--policy=ddpg] [--scale=small] [--seed=S]
//                  [--max-requests=N] [--sessions=N] [--shared-policy]
//
// --port=0 binds an ephemeral port and prints "listening on PORT" (the
// master_client example and EXPERIMENTS.md recipe read it from there).
// --max-requests=N makes the server drop a connection, without replying,
// after N policy RPCs — the deterministic "agent dies mid-run" switch used
// to demonstrate the master's degradation path.
//
// The server runs one poll() event loop serving every connection
// concurrently. By default each session gets its *own* policy instance,
// created through the registry from the key in its Hello (or --policy when
// the client doesn't ask for one), so N masters are served bit-identically
// to N separate agents. --shared-policy instead binds every session to one
// policy instance whose experience pool aggregates all masters' Observe
// transitions — the paper's transition sample database shared across
// masters. --sessions=N caps concurrent sessions.
//
// Observability: --http-port=P multiplexes a plaintext HTTP responder into
// the serving loop — GET /metrics (Prometheus) and GET /statusz (JSON
// session table) work mid-run. --slow-rpc-ms=T logs any request handled
// slower than T ms with its trace id. --trace-out=F records handler spans
// (see scripts/merge_traces.py for joining them with a master's trace).
//
// The policy configuration below must stay identical to master_client.cpp's
// local --check run: the check re-runs the whole control loop in-process
// with the same seeds and asserts bit-for-bit equal rewards.

#include <csignal>
#include <cstdio>

#include "common/flags.h"
#include "core/experiment.h"
#include "ctrl/agent_server.h"
#include "net/tcp.h"
#include "rl/policy_registry.h"
#include "topo/apps.h"

using namespace drlstream;

namespace {

void PrintUsage() {
  std::printf(
      "usage: agent_server [--port=0] [--policy=NAME] "
      "[--scale=small|medium|large]\n"
      "                    [--seed=S] [--max-requests=N] [--sessions=N]\n"
      "                    [--shared-policy] [--http-port=P] "
      "[--slow-rpc-ms=T]\n"
      "registered policies: %s (default ddpg)\n",
      rl::PolicyRegistry::Get().KeysLine().c_str());
}

topo::Scale ParseScale(const std::string& s) {
  if (s == "medium") return topo::Scale::kMedium;
  if (s == "large") return topo::Scale::kLarge;
  return topo::Scale::kSmall;
}

// SIGINT/SIGTERM stop the event loop instead of killing the process, so
// the at-exit observability writers (--trace-out / --metrics-out) run.
// Set before the handlers are installed, on the only thread.
ctrl::AgentServer* g_server = nullptr;

void OnStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

void InstallStopHandlers(ctrl::AgentServer* server) {
  g_server = server;
  std::signal(SIGINT, OnStopSignal);
  std::signal(SIGTERM, OnStopSignal);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }
  ApplyProcessFlags(flags);

  const std::string policy_key = flags.GetString("policy", "ddpg");
  if (!rl::PolicyRegistry::Get().Has(policy_key)) {
    std::fprintf(stderr, "%s\n",
                 rl::PolicyRegistry::Get()
                     .UnknownKeyError(policy_key)
                     .ToString()
                     .c_str());
    return 1;
  }

  // Keep in lockstep with master_client.cpp (see the header comment).
  topo::App app =
      topo::BuildContinuousQueries(ParseScale(flags.GetString("scale", "small")));
  topo::ClusterConfig cluster;
  const int n = app.topology.num_executors();
  const int m = cluster.num_machines;
  rl::StateEncoder encoder(n, m, app.topology.num_spouts(),
                           core::NominalSpoutRate(app.topology, app.workload));
  rl::PolicyContext policy_context;
  policy_context.encoder = &encoder;
  policy_context.topology = &app.topology;
  policy_context.cluster = &cluster;
  policy_context.ddpg.minibatch_size = 8;
  policy_context.ddpg.replay_capacity = 64;
  policy_context.ddpg.knn_k = 6;
  policy_context.ddpg.reward_shift = -8.0;
  policy_context.ddpg.reward_scale = 2.0;
  policy_context.ddpg.seed = flags.GetInt("seed", 21);
  policy_context.dqn.minibatch_size = 8;
  policy_context.dqn.replay_capacity = 64;
  policy_context.dqn.reward_shift = -8.0;
  policy_context.dqn.reward_scale = 2.0;
  policy_context.dqn.seed = flags.GetInt("seed", 21);

  const bool shared_policy = flags.Has("shared-policy");

  auto listener_or = net::TcpListener::Bind("127.0.0.1",
                                            flags.GetInt("port", 0));
  if (!listener_or.ok()) {
    std::fprintf(stderr, "%s\n", listener_or.status().ToString().c_str());
    return 1;
  }

  ctrl::AgentServerOptions options;
  options.max_requests = flags.GetInt("max-requests", 0);
  options.max_sessions = flags.GetInt("sessions", 128);
  options.slow_rpc_ms = flags.GetDouble("slow-rpc-ms", 0.0);
  options.http_port = flags.Has("http-port") ? flags.GetInt("http-port", 0)
                                             : -1;
  options.http_host = flags.GetString("http-host", "127.0.0.1");

  Status served = Status::OK();
  if (shared_policy) {
    auto policy_or =
        rl::PolicyRegistry::Get().Create(policy_key, policy_context);
    if (!policy_or.ok()) {
      std::fprintf(stderr, "%s\n", policy_or.status().ToString().c_str());
      return 1;
    }
    std::printf("listening on %d\n", (*listener_or)->port());
    std::printf("serving shared policy '%s' (%s), up to %d sessions\n",
                policy_key.c_str(), (*policy_or)->Describe().c_str(),
                options.max_sessions);
    ctrl::AgentServer server(policy_or->get(), options);
    if (options.http_port >= 0) {
      auto http_or = server.BindHttp();
      if (!http_or.ok()) {
        std::fprintf(stderr, "%s\n", http_or.status().ToString().c_str());
        return 1;
      }
      std::printf("introspection on http://%s:%d\n", options.http_host.c_str(),
                  *http_or);
    }
    std::fflush(stdout);
    InstallStopHandlers(&server);
    served = server.ServeTcp(listener_or->get());
  } else {
    std::printf("listening on %d\n", (*listener_or)->port());
    std::printf("serving per-session policies (default '%s'), up to %d "
                "sessions\n",
                policy_key.c_str(), options.max_sessions);
    ctrl::AgentServer server(&policy_context, policy_key, options);
    if (options.http_port >= 0) {
      auto http_or = server.BindHttp();
      if (!http_or.ok()) {
        std::fprintf(stderr, "%s\n", http_or.status().ToString().c_str());
        return 1;
      }
      std::printf("introspection on http://%s:%d\n", options.http_host.c_str(),
                  *http_or);
    }
    std::fflush(stdout);
    InstallStopHandlers(&server);
    served = server.ServeTcp(listener_or->get());
  }
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
