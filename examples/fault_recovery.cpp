// Crash-recovery demo: run a stream application through a deterministic
// fault plan — a machine crash, a straggler window, a recovery, and a spout
// rate shock — while the control loop re-schedules around the damage. The
// run must end with zero executors on dead machines; the full fault
// timeline and per-phase latency land in a JSON artifact.
//
//   ./fault_recovery [--fault-plan=plan.csv] [--out=fault_run.json]
//                    [--points=10] [--seed=7] [--print-plan]
//
// Without --fault-plan a built-in plan is used (crash machine 1 at 8s,
// straggle machine 2 by 3x at 14s for 6s, recover machine 1 at 26s, +40%
// spout rates at 38s). CSV format: time_ms,type,machine,magnitude,duration_ms
// with types crash/recover/straggler/link_spike/spout_shock.

#include <cstdio>

#include "common/flags.h"
#include "core/artifacts.h"
#include "core/experiment.h"
#include "sched/scheduler.h"
#include "sim/faults.h"
#include "topo/apps.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;

  sim::FaultPlan plan;
  const std::string plan_path = flags.GetString("fault-plan", "");
  if (!plan_path.empty()) {
    auto loaded = sim::FaultPlan::LoadCsvFile(plan_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bad fault plan: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    plan = *loaded;
  } else {
    plan.AddCrash(8000.0, 1);
    plan.AddStraggler(14000.0, 2, 3.0, 6000.0);
    plan.AddRecover(26000.0, 1);
    plan.AddSpoutShock(38000.0, 1.4);
  }
  if (flags.GetBool("print-plan", false)) {
    std::printf("%s", plan.ToCsv().c_str());
    return 0;
  }

  core::FaultSeriesOptions options;
  options.plan = plan;
  options.series.points = flags.GetInt("points", 10);
  options.series.minute_ms = flags.GetDouble("minute-ms", 6000.0);
  options.series.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  sched::RoundRobinScheduler scheduler;
  std::printf("running %zu-event fault plan over %d reported minutes...\n",
              plan.size(), options.series.points);
  auto result = core::MeasureFaultSeries(app.topology, app.workload, cluster,
                                         &scheduler, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-minute latency:\n");
  for (size_t p = 0; p < result->series.size(); ++p) {
    std::printf("  minute %2zu  %8.3f ms\n", p + 1, result->series[p]);
  }
  std::printf("\nphases:\n");
  for (const core::FaultPhaseStats& phase : result->phases) {
    std::printf("  %-24s [%7.0f, %7.0f) ms  avg %8.3f ms  done %lld  "
                "failed %lld  dropped %lld  moved %d  dead %d\n",
                phase.label.c_str(), phase.start_ms, phase.end_ms,
                phase.avg_latency_ms, phase.roots_completed,
                phase.roots_failed, phase.tuples_dropped,
                phase.executors_moved, phase.dead_machines);
  }
  const sim::SimCounters& c = result->final_counters;
  std::printf("\nroots: emitted %lld, completed %lld, failed %lld; tuples "
              "dropped %lld; faults applied %lld; migrations %lld\n",
              c.roots_emitted, c.roots_completed, c.roots_failed,
              c.tuples_dropped, c.faults_applied, c.migrations);
  std::printf("executors on dead machines after settle: %d\n",
              result->executors_on_dead_machines);

  const std::string out_path = flags.GetString("out", "fault_run.json");
  const Status save =
      core::SaveFaultRunJson(out_path, scheduler.name(), *result);
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // The demo's contract: the control loop absorbed the faults — nothing is
  // left scheduled on a dead machine.
  if (result->executors_on_dead_machines != 0) {
    std::fprintf(stderr,
                 "FAILED: %d executor(s) still on dead machines\n",
                 result->executors_on_dead_machines);
    return 1;
  }
  return 0;
}
