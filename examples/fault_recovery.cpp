// Crash-recovery demo: run a stream application through a deterministic
// fault plan — a machine crash, a straggler window, a recovery, and a spout
// rate shock — while the control loop re-schedules around the damage. The
// run must end with zero executors on dead machines; the full fault
// timeline and per-phase latency land in a JSON artifact.
//
//   ./fault_recovery [--policy=round-robin] [--fault-plan=plan.csv]
//                    [--out=fault_run.json] [--points=10] [--seed=7]
//                    [--print-plan]
//
// --policy selects the scheduler by policy-registry key (--help lists the
// registered names). DRL policies run untrained here — the demo exercises
// the recovery machinery, not learning quality.
//
// Without --fault-plan a built-in plan is used (crash machine 1 at 8s,
// straggle machine 2 by 3x at 14s for 6s, recover machine 1 at 26s, +40%
// spout rates at 38s). CSV format: time_ms,type,machine,magnitude,duration_ms
// with types crash/recover/straggler/link_spike/spout_shock.

#include <cstdio>

#include "common/flags.h"
#include "core/artifacts.h"
#include "core/drl_scheduler.h"
#include "core/experiment.h"
#include "rl/policy_registry.h"
#include "sim/faults.h"
#include "topo/apps.h"

using namespace drlstream;

namespace {

void PrintUsage() {
  std::printf(
      "usage: fault_recovery [--policy=NAME] [--fault-plan=plan.csv]\n"
      "                      [--out=fault_run.json] [--points=N] [--seed=S]\n"
      "                      [--minute-ms=MS] [--print-plan]\n"
      "registered policies: %s (default round-robin)\n",
      rl::PolicyRegistry::Get().KeysLine().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  ApplyProcessFlags(flags);

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;

  sim::FaultPlan plan;
  const std::string plan_path = flags.GetString("fault-plan", "");
  if (!plan_path.empty()) {
    auto loaded = sim::FaultPlan::LoadCsvFile(plan_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bad fault plan: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    plan = *loaded;
  } else {
    plan.AddCrash(8000.0, 1);
    plan.AddStraggler(14000.0, 2, 3.0, 6000.0);
    plan.AddRecover(26000.0, 1);
    plan.AddSpoutShock(38000.0, 1.4);
  }
  if (flags.GetBool("print-plan", false)) {
    std::printf("%s", plan.ToCsv().c_str());
    return 0;
  }

  core::FaultSeriesOptions options;
  options.plan = plan;
  options.series.points = flags.GetInt("points", 10);
  options.series.minute_ms = flags.GetDouble("minute-ms", 6000.0);
  options.series.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  const std::string policy_key = flags.GetString("policy", "round-robin");
  rl::StateEncoder encoder(app.topology.num_executors(),
                           cluster.num_machines, app.topology.num_spouts(),
                           core::NominalSpoutRate(app.topology, app.workload));
  rl::PolicyContext policy_context;
  policy_context.encoder = &encoder;
  policy_context.topology = &app.topology;
  policy_context.cluster = &cluster;
  auto policy = rl::PolicyRegistry::Get().Create(policy_key, policy_context);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }
  core::PolicyScheduler scheduler(policy->get());

  std::printf("running %zu-event fault plan over %d reported minutes "
              "(policy: %s)...\n",
              plan.size(), options.series.points, scheduler.name().c_str());
  auto result = core::MeasureFaultSeries(app.topology, app.workload, cluster,
                                         &scheduler, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-minute latency:\n");
  for (size_t p = 0; p < result->series.size(); ++p) {
    std::printf("  minute %2zu  %8.3f ms\n", p + 1, result->series[p]);
  }
  std::printf("\nphases:\n");
  for (const core::FaultPhaseStats& phase : result->phases) {
    std::printf("  %-24s [%7.0f, %7.0f) ms  avg %8.3f ms  done %lld  "
                "failed %lld  dropped %lld  moved %d  dead %d\n",
                phase.label.c_str(), phase.start_ms, phase.end_ms,
                phase.avg_latency_ms, phase.roots_completed,
                phase.roots_failed, phase.tuples_dropped,
                phase.executors_moved, phase.dead_machines);
  }
  const sim::SimCounters& c = result->final_counters;
  std::printf("\nroots: emitted %lld, completed %lld, failed %lld; tuples "
              "dropped %lld; faults applied %lld; migrations %lld\n",
              c.roots_emitted, c.roots_completed, c.roots_failed,
              c.tuples_dropped, c.faults_applied, c.migrations);
  std::printf("executors on dead machines after settle: %d\n",
              result->executors_on_dead_machines);

  const std::string out_path = flags.GetString("out", "fault_run.json");
  const Status save =
      core::SaveFaultRunJson(out_path, scheduler.name(), *result);
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // The demo's contract: the control loop absorbed the faults — nothing is
  // left scheduled on a dead machine.
  if (result->executors_on_dead_machines != 0) {
    std::fprintf(stderr,
                 "FAILED: %d executor(s) still on dead machines\n",
                 result->executors_on_dead_machines);
    return 1;
  }
  return 0;
}
