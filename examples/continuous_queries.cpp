// The paper's continuous-queries topology (Fig. 3) in functional mode:
// randomly generated "owners of speeding vehicles" queries scan an
// in-memory vehicle table; matches are written to the output file (sink).
// Demonstrates building a topology scale-by-scale and inspecting per-
// component delays.
//
//   ./continuous_queries [--scale=small|medium|large] [--seconds=4]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "topo/apps.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);
  const std::string scale_name = flags.GetString("scale", "small");
  topo::Scale scale = topo::Scale::kSmall;
  if (scale_name == "medium") scale = topo::Scale::kMedium;
  if (scale_name == "large") scale = topo::Scale::kLarge;

  topo::AppOptions app_options;
  app_options.functional = true;
  app_options.table_rows = flags.GetInt("table_rows", 500);
  topo::App app = topo::BuildContinuousQueries(scale, app_options);
  topo::ClusterConfig cluster;

  std::printf("continuous queries (%s): %d executors\n",
              topo::ScaleToString(scale), app.topology.num_executors());
  for (int c = 0; c < app.topology.num_components(); ++c) {
    const topo::Component& comp = app.topology.component(c);
    std::printf("  %-8s x%-3d service %.2f ms %s\n", comp.name.c_str(),
                comp.parallelism, comp.service_mean_ms,
                comp.is_spout ? "(spout)" : "");
  }

  sim::SimOptions sim_options;
  sim_options.functional = true;
  sim_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  sim::Simulator simulator(&app.topology, &app.workload, cluster,
                           sim_options);
  sched::RoundRobinScheduler scheduler(/*workers_per_machine=*/1);
  sched::SchedulingContext context;
  context.topology = &app.topology;
  context.cluster = &cluster;
  context.spout_rates =
      app.workload.RatesVector(app.topology.SpoutComponents(), 0.0);
  auto schedule = scheduler.ComputeSchedule(context);
  if (!schedule.ok()) {
    std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
    return 1;
  }
  if (auto st = simulator.Init(*schedule); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const double seconds = flags.GetDouble("seconds", 4.0);
  simulator.RunFor(seconds * 1000.0);

  std::printf("\nafter %.1f simulated seconds:\n", seconds);
  std::printf("  queries executed:   %lld\n",
              simulator.counters().roots_completed);
  std::printf("  matches written:    %lld\n",
              static_cast<long long>(app.sink->TotalRecords()));
  std::printf("  avg tuple time:     %.3f ms\n",
              simulator.WindowAvgLatencyMs());

  std::printf("\nper-component mean processing delay (queue + service):\n");
  const std::vector<double> proc = simulator.WindowComponentProcMs();
  for (int c = 0; c < app.topology.num_components(); ++c) {
    std::printf("  %-8s %.3f ms\n", app.topology.component(c).name.c_str(),
                proc[c]);
  }
  std::printf("\nper-edge mean transfer delay:\n");
  const std::vector<double> transfer = simulator.WindowEdgeTransferMs();
  for (size_t e = 0; e < app.topology.edges().size(); ++e) {
    const topo::StreamEdge& edge = app.topology.edges()[e];
    std::printf("  %s -> %s: %.3f ms\n",
                app.topology.component(edge.from).name.c_str(),
                app.topology.component(edge.to).name.c_str(), transfer[e]);
  }
  return 0;
}
