// Workload-scenario comparison: run registry policies through a pluggable
// load scenario and compare them on latency AND energy. Machines with no
// hosted executors drop to deep sleep after --sleep-after-ms, so the
// energy-aware consolidation baseline saves joules the spread-everything
// round-robin baseline cannot.
//
//   ./scenario_run [--workload=diurnal:period_ms=24000,amplitude=0.4]
//       [--policies=round-robin,energy-aware] [--points=20]
//       [--minute-ms=6000] [--sleep-after-ms=5000] [--seed=7]
//       [--json-out=scenario]          # writes scenario.<policy>.json
//
// Scenario specs: constant | diurnal | flash_crowd | drift | trace_replay
// | compose (see src/workload/registry.cc for parameters).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/drl_scheduler.h"
#include "core/scenario.h"
#include "rl/policy_registry.h"
#include "topo/apps.h"
#include "workload/registry.h"

using namespace drlstream;

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;
  // Opt into machine deep sleep so consolidation pays off in joules.
  cluster.machine.sleep_after_idle_ms = flags.GetDouble("sleep-after-ms", 5000.0);

  core::ScenarioOptions options;
  options.workload_spec =
      flags.GetString("workload", "diurnal:period_ms=24000,amplitude=0.4");
  options.workload_seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.series.points = flags.GetInt("points", 20);
  options.series.minute_ms = flags.GetDouble("minute-ms", 6000.0);
  options.series.measure_window_ms =
      flags.GetDouble("measure-ms", options.series.minute_ms / 2.0);
  options.series.seed = options.workload_seed + 100;

  {
    auto parsed = workload::ParseWorkloadSpec(options.workload_spec,
                                              options.workload_seed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--workload: %s\n",
                   parsed.status().ToString().c_str());
      std::fprintf(stderr, "registered scenarios: %s\n",
                   workload::WorkloadRegistry::Get().KeysLine().c_str());
      return 1;
    }
    std::printf("scenario: %s\n", (*parsed)->Describe().c_str());
  }

  const std::vector<std::string> policies =
      SplitCommas(flags.GetString("policies", "round-robin,energy-aware"));
  if (policies.empty()) {
    std::fprintf(stderr, "--policies must name at least one of: %s\n",
                 rl::PolicyRegistry::Get().KeysLine().c_str());
    return 1;
  }
  rl::PolicyContext policy_context;
  policy_context.topology = &app.topology;
  policy_context.cluster = &cluster;

  const std::string json_prefix = flags.GetString("json-out", "");
  struct Row {
    std::string policy;
    double avg_latency_ms = 0.0;
    double joules = 0.0;
    double watts = 0.0;
    int asleep_final = 0;
  };
  std::vector<Row> rows;

  for (const std::string& key : policies) {
    auto policy_or = rl::PolicyRegistry::Get().Create(key, policy_context);
    if (!policy_or.ok()) {
      std::fprintf(stderr, "policy '%s': %s\n", key.c_str(),
                   policy_or.status().ToString().c_str());
      return 1;
    }
    core::PolicyScheduler scheduler(policy_or->get());
    auto run_or = core::MeasureScenarioSeries(app.topology, app.workload,
                                              cluster, &scheduler, options);
    if (!run_or.ok()) {
      std::fprintf(stderr, "scenario run (%s): %s\n", key.c_str(),
                   run_or.status().ToString().c_str());
      return 1;
    }
    const core::ScenarioRunResult& run = *run_or;

    std::printf("\n== %s ==\n", key.c_str());
    std::printf("  minute   latency_ms   load   watts  asleep  moved\n");
    double latency_sum = 0.0;
    for (size_t p = 0; p < run.points.size(); ++p) {
      const core::ScenarioPointStats& point = run.points[p];
      std::printf("  %6zu  %10.3f  %5.2fx  %6.1f  %6d  %5d\n", p + 1,
                  point.avg_latency_ms, point.rate_multiplier,
                  point.avg_power_watts, point.machines_asleep,
                  point.executors_moved);
      latency_sum += point.avg_latency_ms;
    }
    Row row;
    row.policy = key;
    row.avg_latency_ms =
        run.points.empty() ? 0.0 : latency_sum / run.points.size();
    row.joules = run.total_joules;
    row.watts = run.avg_power_watts;
    row.asleep_final =
        run.points.empty() ? 0 : run.points.back().machines_asleep;
    rows.push_back(row);

    if (!json_prefix.empty()) {
      const std::string path = json_prefix + "." + key + ".json";
      Status saved = core::SaveScenarioRunJson(path, run);
      if (!saved.ok()) {
        std::fprintf(stderr, "%s\n", saved.ToString().c_str());
        return 1;
      }
      std::printf("  wrote %s\n", path.c_str());
    }
  }

  std::printf("\nsummary (%d minutes of %s):\n", options.series.points,
              options.workload_spec.c_str());
  std::printf("  %-16s %12s %12s %8s %8s\n", "policy", "avg_latency",
              "joules", "watts", "asleep");
  for (const Row& row : rows) {
    std::printf("  %-16s %9.3f ms %10.1f J %7.1f %8d\n", row.policy.c_str(),
                row.avg_latency_ms, row.joules, row.watts, row.asleep_final);
  }
  std::printf("\nthe energy-aware baseline packs executors onto few machines "
              "and lets the rest\nsleep — fewer joules at a latency cost the "
              "energy term of the reward\n(core/online.h energy_lambda) lets "
              "a DRL agent trade off explicitly.\n");
  return 0;
}
