// Multi-tenant cluster demo: N copies of a stream application share ONE
// simulated cluster — machines, cores and NIC uplinks are contended across
// tenants — while a single scheduler brain (one policy instance) makes
// every tenant's re-scheduling decision each control epoch. Per-tenant
// latency and throughput land in a summary JSON together with Jain's
// fairness index over tenant throughputs.
//
//   ./multi_tenant_cluster [--tenants=4] [--policy=round-robin]
//                          [--fault-plan=plan.csv] [--epochs=10]
//                          [--epoch-ms=2000] [--seed=7]
//                          [--workload="diurnal:period_ms=20000;constant"]
//                          [--sleep-after-ms=-1]
//                          [--out=multi_tenant.json]
//
// --policy selects the shared brain by policy-registry key (--help lists
// the registered names); all tenants run the same topology shape, so one
// encoder/agent serves every tenant's states. DRL policies run untrained
// here — the demo exercises the shared-cluster control path, not learning
// quality. Tenants get staggered initial deployments and slightly skewed
// arrival rates, so fairness is measured under genuinely asymmetric load.
//
// --workload applies per-tenant load scenarios: ';'-separated workload
// registry specs (',' separates parameters inside one spec); tenant t runs
// spec[t % count] seeded with seed+t. --sleep-after-ms >= 0 lets hostless
// machines drop to deep sleep, making the per-tenant joules column react
// to consolidation (try --policy=energy-aware).
//
// Without --fault-plan the cluster stays healthy. CSV format:
// time_ms,type,machine,magnitude,duration_ms with types
// crash/recover/straggler/link_spike/spout_shock.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/experiment.h"
#include "rl/policy_registry.h"
#include "sched/schedule.h"
#include "sim/cluster_sim.h"
#include "sim/faults.h"
#include "topo/apps.h"
#include "workload/registry.h"

using namespace drlstream;

namespace {

void PrintUsage() {
  std::printf(
      "usage: multi_tenant_cluster [--tenants=N] [--policy=NAME]\n"
      "                            [--fault-plan=plan.csv] [--epochs=N]\n"
      "                            [--epoch-ms=MS] [--seed=S]\n"
      "                            [--workload=\"SPEC[;SPEC...]\"]\n"
      "                            [--sleep-after-ms=MS]\n"
      "                            [--out=multi_tenant.json]\n"
      "registered policies: %s (default round-robin)\n"
      "registered workload scenarios: %s (tenant t runs spec t %% count)\n",
      rl::PolicyRegistry::Get().KeysLine().c_str(),
      workload::WorkloadRegistry::Get().KeysLine().c_str());
}

struct TenantSummary {
  std::vector<double> epoch_latency_ms;
  double mean_latency_ms = 0.0;
  sim::SimCounters counters;
  int inflight = 0;
  std::string workload;  // scenario spec the tenant ran ("" = none)
  double joules = 0.0;   // energy attributed to the tenant's executors
};

/// Splits a ';'-separated list of workload specs (',' separates parameters
/// inside one spec, so it cannot be the list separator).
std::vector<std::string> SplitSpecs(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t semi = list.find(';', start);
    const size_t end = semi == std::string::npos ? list.size() : semi;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return out;
}

/// Jain's fairness index over per-tenant throughputs: 1.0 when every
/// tenant completes the same number of roots, 1/N when one tenant starves
/// all others.
double JainFairness(const std::vector<TenantSummary>& tenants) {
  double sum = 0.0, sum_sq = 0.0;
  for (const TenantSummary& t : tenants) {
    const double x = static_cast<double>(t.counters.roots_completed);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(tenants.size()) * sum_sq);
}

Status WriteSummaryJson(const std::string& path, const std::string& policy,
                        const std::vector<TenantSummary>& tenants,
                        const sim::SimCounters& cluster, double fairness,
                        double total_joules) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out << "{\n  \"policy\": \"" << policy << "\",\n";
  out << "  \"fairness_jain\": " << fairness << ",\n";
  out << "  \"cluster\": {\"roots_emitted\": " << cluster.roots_emitted
      << ", \"roots_completed\": " << cluster.roots_completed
      << ", \"roots_failed\": " << cluster.roots_failed
      << ", \"tuples_dropped\": " << cluster.tuples_dropped
      << ", \"faults_applied\": " << cluster.faults_applied
      << ", \"energy_joules\": " << total_joules << "},\n";
  out << "  \"tenants\": [\n";
  for (size_t t = 0; t < tenants.size(); ++t) {
    const TenantSummary& s = tenants[t];
    out << "    {\"tenant\": " << t
        << ", \"workload\": \"" << s.workload << "\""
        << ", \"mean_latency_ms\": " << s.mean_latency_ms
        << ", \"joules\": " << s.joules
        << ", \"roots_completed\": " << s.counters.roots_completed
        << ", \"roots_failed\": " << s.counters.roots_failed
        << ", \"migrations\": " << s.counters.migrations
        << ", \"inflight\": " << s.inflight << ", \"epoch_latency_ms\": [";
    for (size_t e = 0; e < s.epoch_latency_ms.size(); ++e) {
      out << (e == 0 ? "" : ", ") << s.epoch_latency_ms[e];
    }
    out << "]}" << (t + 1 < tenants.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  ApplyProcessFlags(flags);

  const int num_tenants = flags.GetInt("tenants", 4);
  const int epochs = flags.GetInt("epochs", 10);
  const double epoch_ms = flags.GetDouble("epoch-ms", 2000.0);
  if (num_tenants < 1 || epochs < 1 || epoch_ms <= 0.0) {
    std::fprintf(stderr, "need tenants >= 1, epochs >= 1, epoch-ms > 0\n");
    return 1;
  }

  topo::App app = topo::BuildContinuousQueries(topo::Scale::kSmall);
  topo::ClusterConfig cluster;
  // Negative (the default) keeps deep sleep off and trajectories identical
  // to the pre-energy-model demo.
  cluster.machine.sleep_after_idle_ms = flags.GetDouble("sleep-after-ms", -1.0);

  const std::vector<std::string> workload_specs =
      SplitSpecs(flags.GetString("workload", ""));

  sim::FaultPlan plan;
  const std::string plan_path = flags.GetString("fault-plan", "");
  if (!plan_path.empty()) {
    auto loaded = sim::FaultPlan::LoadCsvFile(plan_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "bad fault plan: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    plan = *loaded;
  }

  sim::SimOptions sim_options;
  sim_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  sim::ClusterSim sim(cluster, sim_options);
  if (!plan.empty()) {
    const Status installed = sim.InstallFaultPlan(plan);
    if (!installed.ok()) {
      std::fprintf(stderr, "%s\n", installed.ToString().c_str());
      return 1;
    }
  }

  // Per-tenant workloads: same shape, slightly skewed rates (tenant t runs
  // (1 + t/10)x the base load), so fairness is measured under asymmetry.
  std::vector<topo::Workload> workloads(static_cast<size_t>(num_tenants),
                                        app.workload);
  // Per-tenant scenario generators (installed before Start so the sources
  // prime with the modulated rates); owned here, borrowed by the sim.
  std::vector<std::unique_ptr<workload::WorkloadGenerator>> generators(
      static_cast<size_t>(num_tenants));
  std::vector<std::string> tenant_specs(static_cast<size_t>(num_tenants));
  const int n = app.topology.num_executors();
  const int m = cluster.num_machines;
  for (int t = 0; t < num_tenants; ++t) {
    workloads[static_cast<size_t>(t)].ScaleAllRates(1.0 + 0.1 * t);
    sched::Schedule initial(n, m);
    initial.set_tenant(t);
    for (int j = 0; j < n; ++j) initial.Assign(j, (j + t) % m);
    auto added =
        sim.AddTenant(&app.topology, &workloads[static_cast<size_t>(t)],
                      initial);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
      return 1;
    }
    if (!workload_specs.empty()) {
      const std::string& spec =
          workload_specs[static_cast<size_t>(t) % workload_specs.size()];
      auto generator = workload::ParseWorkloadSpec(
          spec, sim_options.seed + static_cast<uint64_t>(t));
      if (!generator.ok()) {
        std::fprintf(stderr, "tenant %d --workload '%s': %s\n", t,
                     spec.c_str(), generator.status().ToString().c_str());
        return 1;
      }
      generators[static_cast<size_t>(t)] = std::move(*generator);
      tenant_specs[static_cast<size_t>(t)] = spec;
      const Status installed = sim.SetTenantWorkloadGenerator(
          t, generators[static_cast<size_t>(t)].get());
      if (!installed.ok()) {
        std::fprintf(stderr, "%s\n", installed.ToString().c_str());
        return 1;
      }
    }
  }
  const Status started = sim.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  // One scheduler brain for every tenant: all tenants share the topology
  // shape, so a single policy (and encoder) serves each tenant's state.
  const std::string policy_key = flags.GetString("policy", "round-robin");
  rl::StateEncoder encoder(n, m, app.topology.num_spouts(),
                           core::NominalSpoutRate(app.topology, app.workload));
  rl::PolicyContext policy_context;
  policy_context.encoder = &encoder;
  policy_context.topology = &app.topology;
  policy_context.cluster = &cluster;
  auto policy = rl::PolicyRegistry::Get().Create(policy_key, policy_context);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  std::printf("%d tenants x %d executors on %d shared machines, policy %s, "
              "%d epochs x %.0f ms\n",
              num_tenants, n, m, (*policy)->name().c_str(), epochs, epoch_ms);

  std::vector<TenantSummary> tenants(static_cast<size_t>(num_tenants));
  const std::vector<int> spouts = app.topology.SpoutComponents();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // The brain decides every tenant's next deployment from its live state
    // on the shared substrate, then each decision is deployed.
    for (int t = 0; t < num_tenants; ++t) {
      rl::State state;
      state.tenant = t;
      state.assignments = sim.TenantSchedule(t).assignments();
      // With a scenario installed the brain observes the modulated rates —
      // the same (X, w) the single-tenant environment would feed it.
      state.spout_rates =
          generators[static_cast<size_t>(t)] != nullptr
              ? sim.TenantEffectiveSpoutRates(t)
              : workloads[static_cast<size_t>(t)].RatesVector(spouts,
                                                              sim.now_ms());
      state.machine_up = sim.MachineUpMask();
      auto schedule = (*policy)->GreedyAction(state);
      if (!schedule.ok()) {
        std::fprintf(stderr, "tenant %d decision: %s\n", t,
                     schedule.status().ToString().c_str());
        return 1;
      }
      const Status migrated = sim.Migrate(t, *schedule);
      if (!migrated.ok()) {
        std::fprintf(stderr, "tenant %d migrate: %s\n", t,
                     migrated.ToString().c_str());
        return 1;
      }
    }
    sim.RunFor(epoch_ms);
    for (int t = 0; t < num_tenants; ++t) {
      tenants[static_cast<size_t>(t)].epoch_latency_ms.push_back(
          sim.TenantWindowAvgLatencyMs(t));
    }
    sim.ResetWindow();
  }

  for (int t = 0; t < num_tenants; ++t) {
    TenantSummary& s = tenants[static_cast<size_t>(t)];
    s.counters = sim.TenantCounters(t);
    s.inflight = sim.TenantInflightRoots(t);
    s.workload = tenant_specs[static_cast<size_t>(t)];
    s.joules = sim.TenantJoules(t);
    double sum = 0.0;
    int measured = 0;
    for (double l : s.epoch_latency_ms) {
      if (l > 0.0) {
        sum += l;
        ++measured;
      }
    }
    s.mean_latency_ms = measured > 0 ? sum / measured : 0.0;
  }
  const double fairness = JainFairness(tenants);

  const double total_joules = sim.TotalJoules();

  std::printf("\n%-7s %14s %12s %10s %10s %12s\n", "tenant", "mean latency",
              "completed", "failed", "migrations", "joules");
  for (int t = 0; t < num_tenants; ++t) {
    const TenantSummary& s = tenants[static_cast<size_t>(t)];
    std::printf("%-7d %11.3f ms %12lld %10lld %10lld %10.1f J\n", t,
                s.mean_latency_ms, s.counters.roots_completed,
                s.counters.roots_failed, s.counters.migrations, s.joules);
  }
  const sim::SimCounters& c = sim.counters();
  std::printf("\ncluster: emitted %lld, completed %lld, failed %lld, "
              "dropped %lld, faults %lld, %.1f J drawn\n",
              c.roots_emitted, c.roots_completed, c.roots_failed,
              c.tuples_dropped, c.faults_applied, total_joules);
  std::printf("Jain fairness over tenant throughputs: %.4f\n", fairness);

  const std::string out_path = flags.GetString("out", "multi_tenant.json");
  const Status saved = WriteSummaryJson(out_path, (*policy)->name(), tenants,
                                        c, fairness, total_joules);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
