// The master side of the networked control plane: runs the full online
// learning loop (core::RunOnline) against a remote agent_server, with the
// remote agent standing in as the rl::Policy. Every SelectAction /
// Observe / TrainStep crosses the wire; schedules come back as incremental
// diffs; the exploration RNG round-trips through the agent so the run is
// bit-identical to an in-process one.
//
//   ./agent_server --port=0 &            # prints "listening on PORT"
//   ./master_client --connect=127.0.0.1:PORT [--epochs=6] [--seed=S]
//                   [--agent-seed=S] [--scale=small] [--sessions=N]
//                   [--check]
//
// --sessions=N runs N concurrent master control loops, each on its own
// connection (its own server session and, in the server's default
// per-session mode, its own policy instance) with exploration seed
// seed + i. Because sessions are independent, every loop's rewards are
// bit-identical to running it alone — which is exactly what --check
// verifies.
//
// --check re-runs the identical control loop(s) in-process (constructing
// the same policy the Hello handshake reported, with the same seeds) and
// exits non-zero unless every reward matches EXPECT_EQ-style,
// double-for-double. Run both sides with --threads=1 for bit-for-bit
// reproducibility (see EXPERIMENTS.md "Networked control plane"); --check
// assumes the server's default per-session mode (a --shared-policy agent
// trains on all sessions at once, so no per-session replay can match it).
//
// The policy/environment configuration must stay identical to
// agent_server.cpp (see its header comment).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "core/environment.h"
#include "core/experiment.h"
#include "core/online.h"
#include "ctrl/master_client.h"
#include "rl/policy_registry.h"
#include "topo/apps.h"

using namespace drlstream;

namespace {

void PrintUsage() {
  std::printf(
      "usage: master_client --connect=HOST:PORT [--epochs=N] [--seed=S]\n"
      "                     [--agent-seed=S] [--scale=small|medium|large]\n"
      "                     [--sessions=N] [--check] [--pings=N]\n"
      "remote policies come from the agent's registry: %s\n",
      rl::PolicyRegistry::Get().KeysLine().c_str());
}

topo::Scale ParseScale(const std::string& s) {
  if (s == "medium") return topo::Scale::kMedium;
  if (s == "large") return topo::Scale::kLarge;
  return topo::Scale::kSmall;
}

core::MeasurementConfig FastMeasure() {
  core::MeasurementConfig config;
  config.stabilize_ms = 800.0;
  config.num_measurements = 1;
  config.measurement_interval_ms = 200.0;
  return config;
}

struct RunConfig {
  topo::Scale scale = topo::Scale::kSmall;
  int epochs = 6;
  uint64_t seed = 17;       // control-loop exploration seed
  uint64_t agent_seed = 21; // policy-construction seed (matches the agent)
};

/// One deterministic online run of `policy` on a fresh environment. Both
/// the remote run and the --check local run go through here, so they only
/// differ by which Policy implementation they talk to.
StatusOr<core::OnlineResult> RunLoop(rl::Policy* policy,
                                     const RunConfig& config) {
  topo::App app = topo::BuildContinuousQueries(config.scale);
  topo::ClusterConfig cluster;
  const int n = app.topology.num_executors();
  const int m = cluster.num_machines;
  sim::SimOptions sim_options;
  sim_options.seed = 71;
  core::SchedulingEnvironment env(&app.topology, app.workload, cluster,
                                  sim_options, FastMeasure());
  Rng init_rng(13);
  DRLSTREAM_RETURN_NOT_OK(
      env.Reset(sched::Schedule::RandomPacked(n, m, 4, &init_rng)));
  core::OnlineOptions options;
  options.epochs = config.epochs;
  options.train_steps_per_epoch = 1;
  options.seed = config.seed;
  options.reward_cap_ms = 100000.0;
  return core::RunOnline(policy, &env, options);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  if (flags.Has("help") || !flags.Has("connect")) {
    PrintUsage();
    return flags.Has("help") ? 0 : 1;
  }
  ApplyProcessFlags(flags);

  const std::string endpoint = flags.GetString("connect", "");
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return 1;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);

  RunConfig config;
  config.scale = ParseScale(flags.GetString("scale", "small"));
  config.epochs = flags.GetInt("epochs", 6);
  config.seed = flags.GetInt("seed", 17);
  config.agent_seed = flags.GetInt("agent-seed", 21);

  const int sessions = std::max(1, flags.GetInt("sessions", 1));
  // Clock-offset calibration rounds before the control loop. Defaults on
  // when tracing so scripts/merge_traces.py finds the "clock_offset"
  // instants it aligns the agent's trace with.
  const int pings = flags.GetInt("pings", flags.Has("trace-out") ? 8 : 0);

  // One concurrent master loop per session, each with its own connection
  // and its own exploration seed. Session i's remote_info carries the
  // accept-order session id the server assigned it.
  topo::ClusterConfig cluster;
  std::vector<StatusOr<core::OnlineResult>> remote_runs(
      static_cast<size_t>(sessions), Status::Internal("not run"));
  std::vector<ctrl::HelloResponse> remotes(static_cast<size_t>(sessions));
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      threads.emplace_back([&, i] {
        ctrl::MasterClientOptions client_options;
        client_options.num_machines = cluster.num_machines;
        client_options.client_name =
            "master_client example #" + std::to_string(i);
        ctrl::MasterClient client(host, port, client_options);
        Status connected = client.Connect();
        if (!connected.ok()) {
          remote_runs[static_cast<size_t>(i)] = connected;
          return;
        }
        remotes[static_cast<size_t>(i)] = client.remote_info();
        for (int p = 0; p < pings; ++p) {
          Status pinged = client.Ping();
          if (!pinged.ok()) {
            remote_runs[static_cast<size_t>(i)] = pinged;
            return;
          }
        }
        if (pings > 0) {
          auto offset_or = client.EstimatedClockOffsetUs();
          if (offset_or.ok()) {
            std::printf("session %d clock offset (agent - master): %.1f us\n",
                        i, *offset_or);
          }
        }
        RunConfig session_config = config;
        session_config.seed = config.seed + static_cast<uint64_t>(i);
        remote_runs[static_cast<size_t>(i)] = RunLoop(&client, session_config);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int i = 0; i < sessions; ++i) {
    const auto& run = remote_runs[static_cast<size_t>(i)];
    if (!run.ok()) {
      std::fprintf(stderr, "session %d failed: %s\n", i,
                   run.status().ToString().c_str());
      return 1;
    }
  }
  const ctrl::HelloResponse& remote = remotes[0];
  std::printf("connected to %s: policy '%s' (%s)\n", endpoint.c_str(),
              remote.policy_name.c_str(), remote.description.c_str());
  for (int i = 0; i < sessions; ++i) {
    const core::OnlineResult& result = *remote_runs[static_cast<size_t>(i)];
    std::printf("session %d (server id %llu) rewards (%d epochs):\n", i,
                static_cast<unsigned long long>(
                    remotes[static_cast<size_t>(i)].session_id),
                config.epochs);
    for (size_t e = 0; e < result.rewards.size(); ++e) {
      std::printf("  epoch %2zu  reward %.17g\n", e, result.rewards[e]);
    }
  }

  if (!flags.Has("check")) return 0;

  // Reconstruct the agent's policy locally (same key, same configuration,
  // same seeds — see agent_server.cpp) and replay the identical loop
  // in-process. With --threads=1 on both sides every reward must match
  // bit for bit: the wire protocol round-trips doubles as IEEE-754 bit
  // patterns and the exploration RNG state travels with each request.
  topo::App app = topo::BuildContinuousQueries(config.scale);
  const int n = app.topology.num_executors();
  const int m = cluster.num_machines;
  rl::StateEncoder encoder(n, m, app.topology.num_spouts(),
                           core::NominalSpoutRate(app.topology, app.workload));
  rl::PolicyContext policy_context;
  policy_context.encoder = &encoder;
  policy_context.topology = &app.topology;
  policy_context.cluster = &cluster;
  policy_context.ddpg.minibatch_size = 8;
  policy_context.ddpg.replay_capacity = 64;
  policy_context.ddpg.knn_k = 6;
  policy_context.ddpg.reward_shift = -8.0;
  policy_context.ddpg.reward_scale = 2.0;
  policy_context.ddpg.seed = config.agent_seed;
  policy_context.dqn.minibatch_size = 8;
  policy_context.dqn.replay_capacity = 64;
  policy_context.dqn.reward_shift = -8.0;
  policy_context.dqn.reward_scale = 2.0;
  policy_context.dqn.seed = config.agent_seed;
  int mismatches = 0;
  for (int s = 0; s < sessions; ++s) {
    // Each server session got a *fresh* policy instance, so each local
    // replay does too.
    auto local_policy =
        rl::PolicyRegistry::Get().Create(remote.registry_key, policy_context);
    if (!local_policy.ok()) {
      std::fprintf(stderr, "cannot rebuild '%s' locally: %s\n",
                   remote.registry_key.c_str(),
                   local_policy.status().ToString().c_str());
      return 1;
    }
    RunConfig session_config = config;
    session_config.seed = config.seed + static_cast<uint64_t>(s);
    auto local_run = RunLoop(local_policy->get(), session_config);
    if (!local_run.ok()) {
      std::fprintf(stderr, "local run failed: %s\n",
                   local_run.status().ToString().c_str());
      return 1;
    }
    const core::OnlineResult& remote_result =
        *remote_runs[static_cast<size_t>(s)];
    if (local_run->rewards.size() != remote_result.rewards.size()) {
      std::fprintf(stderr,
                   "check FAILED session %d: %zu local vs %zu remote epochs\n",
                   s, local_run->rewards.size(), remote_result.rewards.size());
      return 1;
    }
    for (size_t i = 0; i < local_run->rewards.size(); ++i) {
      if (local_run->rewards[i] != remote_result.rewards[i]) {
        std::fprintf(
            stderr,
            "check FAILED session %d epoch %zu: local %.17g != remote %.17g\n",
            s, i, local_run->rewards[i], remote_result.rewards[i]);
        ++mismatches;
      }
    }
    if (local_run->final_schedule.assignments() !=
        remote_result.final_schedule.assignments()) {
      std::fprintf(stderr, "check FAILED session %d: final schedules differ\n",
                   s);
      ++mismatches;
    }
  }
  if (mismatches > 0) return 1;
  std::printf("check OK: %d session(s), every reward and final schedule "
              "bit-identical to the in-process runs\n",
              sessions);
  return 0;
}
