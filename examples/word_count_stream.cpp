// The paper's word count topology (stream version, Fig. 5), run in
// functional mode: LogStash-style lines from "Alice's Adventures in
// Wonderland" are split into words, counted with fields grouping, and the
// running counts stored into the (in-memory) Mongo database — while the
// discrete-event engine measures real end-to-end tuple processing times.
//
//   ./word_count_stream [--seconds=5] [--seed=7] [--top=10]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "topo/apps.h"

using namespace drlstream;

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  ApplyProcessFlags(flags);
  const double seconds = flags.GetDouble("seconds", 5.0);
  const int top = flags.GetInt("top", 10);

  topo::AppOptions app_options;
  app_options.functional = true;
  topo::App app = topo::BuildWordCount(app_options);
  topo::ClusterConfig cluster;

  sim::SimOptions sim_options;
  sim_options.functional = true;
  sim_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  sim::Simulator simulator(&app.topology, &app.workload, cluster,
                           sim_options);

  // Deploy with one worker process per machine (the paper's constraint).
  sched::RoundRobinScheduler scheduler(/*workers_per_machine=*/1);
  sched::SchedulingContext context;
  context.topology = &app.topology;
  context.cluster = &cluster;
  context.spout_rates =
      app.workload.RatesVector(app.topology.SpoutComponents(), 0.0);
  auto schedule = scheduler.ComputeSchedule(context);
  if (!schedule.ok()) {
    std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
    return 1;
  }
  if (auto st = simulator.Init(*schedule); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  simulator.RunFor(seconds * 1000.0);

  const sim::SimCounters& counters = simulator.counters();
  std::printf("processed %lld lines (%lld tuples) in %.1f simulated "
              "seconds\n",
              counters.roots_completed, counters.tuples_processed, seconds);
  std::printf("avg end-to-end tuple processing time: %.3f ms\n",
              simulator.WindowAvgLatencyMs());

  // Top words stored in the database (each Record call = one stored update;
  // the stored count equals the word's number of occurrences processed).
  std::vector<std::pair<std::string, int64_t>> counts;
  for (const auto& [word, count] : app.sink->Snapshot("word_counts")) {
    counts.emplace_back(word, count);
  }
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("\ntop %d words:\n", top);
  for (int i = 0; i < top && i < static_cast<int>(counts.size()); ++i) {
    std::printf("  %-12s %6lld\n", counts[i].first.c_str(),
                static_cast<long long>(counts[i].second));
  }
  return 0;
}
